//! Technology nodes and cell parameters.

use cache8t_sram::CellKind;

use crate::{SquareMicrons, Volts};

/// A CMOS technology node with the 6T/8T cell parameters the model needs.
///
/// The values are *representative*, assembled from the publications the
/// paper builds on (Chang et al. for 8T cell design, Morita et al. for
/// area, Verma & Chandrakasan for sub-threshold 8T operation), not a
/// silicon characterization. Two relationships matter and are encoded
/// faithfully:
///
/// - at 65 nm a 6T cell is smaller than an 8T cell, but **beyond 45 nm the
///   ordering flips** — a variability-tolerant 6T cell must be upsized
///   faster than the 8T cell (paper §2: "8T cells are more compact in
///   technology nodes beyond 45 nm");
/// - the 6T minimum operating voltage stays high (stability collapses),
///   while an 8T array keeps working far lower — the whole reason the
///   paper cares about 8T caches under DVFS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyNode {
    name: &'static str,
    feature_nm: u32,
    area_6t_um2: f64,
    area_8t_um2: f64,
    vdd_nominal: f64,
    vmin_6t: f64,
    vmin_8t: f64,
    /// Energy to read one bit line at nominal voltage, in pJ.
    bitline_read_pj: f64,
    /// Energy to drive one write bit-line pair at nominal voltage, in pJ.
    bitline_write_pj: f64,
    /// Per-access energy of one Set-Buffer latch bit at nominal voltage,
    /// in pJ (short local wires, no precharge — far below a bit line).
    buffer_bit_pj: f64,
    /// Per-cell leakage power at nominal voltage, in nW.
    cell_leakage_nw: f64,
}

impl TechnologyNode {
    /// The 65 nm node (where 8T was first demonstrated at scale).
    pub const fn nm65() -> Self {
        TechnologyNode {
            name: "65nm",
            feature_nm: 65,
            area_6t_um2: 0.52,
            area_8t_um2: 0.71,
            vdd_nominal: 1.2,
            vmin_6t: 0.85,
            vmin_8t: 0.38,
            bitline_read_pj: 0.035,
            bitline_write_pj: 0.045,
            buffer_bit_pj: 0.004,
            cell_leakage_nw: 0.25,
        }
    }

    /// The 45 nm node (the crossover point for cell area).
    pub const fn nm45() -> Self {
        TechnologyNode {
            name: "45nm",
            feature_nm: 45,
            area_6t_um2: 0.346,
            area_8t_um2: 0.346,
            vdd_nominal: 1.1,
            vmin_6t: 0.80,
            vmin_8t: 0.36,
            bitline_read_pj: 0.025,
            bitline_write_pj: 0.032,
            buffer_bit_pj: 0.003,
            cell_leakage_nw: 0.32,
        }
    }

    /// The 32 nm node (the paper's "and beyond" regime, where 8T wins on
    /// area as well).
    pub const fn nm32() -> Self {
        TechnologyNode {
            name: "32nm",
            feature_nm: 32,
            area_6t_um2: 0.258,
            area_8t_um2: 0.222,
            vdd_nominal: 1.0,
            vmin_6t: 0.75,
            vmin_8t: 0.35,
            bitline_read_pj: 0.018,
            bitline_write_pj: 0.023,
            buffer_bit_pj: 0.002,
            cell_leakage_nw: 0.40,
        }
    }

    /// All modelled nodes, largest feature size first.
    pub fn all() -> [TechnologyNode; 3] {
        [Self::nm65(), Self::nm45(), Self::nm32()]
    }

    /// Node name, e.g. `"32nm"`.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Feature size in nanometres.
    pub const fn feature_nm(&self) -> u32 {
        self.feature_nm
    }

    /// Area of one cell of the given topology.
    pub fn cell_area(&self, kind: CellKind) -> SquareMicrons {
        SquareMicrons::new(match kind {
            CellKind::SixT => self.area_6t_um2,
            CellKind::EightT => self.area_8t_um2,
        })
    }

    /// Nominal supply voltage.
    pub fn vdd_nominal(&self) -> Volts {
        Volts::new(self.vdd_nominal)
    }

    /// Minimum reliable operating voltage of a cache built from the given
    /// cell topology — the quantity that bounds DVFS (paper §1).
    pub fn vmin(&self, kind: CellKind) -> Volts {
        Volts::new(match kind {
            CellKind::SixT => self.vmin_6t,
            CellKind::EightT => self.vmin_8t,
        })
    }

    /// Per-bit-line read energy at nominal voltage, in pJ.
    pub(crate) fn bitline_read_pj(&self) -> f64 {
        self.bitline_read_pj
    }

    /// Per-bit-line write energy at nominal voltage, in pJ.
    pub(crate) fn bitline_write_pj(&self) -> f64 {
        self.bitline_write_pj
    }

    /// Per-buffer-bit access energy at nominal voltage, in pJ.
    pub(crate) fn buffer_bit_pj(&self) -> f64 {
        self.buffer_bit_pj
    }

    /// Per-cell leakage at nominal voltage, in nW.
    pub(crate) fn cell_leakage_nw(&self) -> f64 {
        self.cell_leakage_nw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_ordering_flips_beyond_45nm() {
        // Paper §2: 8T larger at 65 nm, more compact beyond 45 nm.
        let n65 = TechnologyNode::nm65();
        assert!(n65.cell_area(CellKind::EightT) > n65.cell_area(CellKind::SixT));
        let n32 = TechnologyNode::nm32();
        assert!(n32.cell_area(CellKind::EightT) < n32.cell_area(CellKind::SixT));
    }

    #[test]
    fn eight_t_scales_to_lower_voltage_everywhere() {
        for node in TechnologyNode::all() {
            assert!(
                node.vmin(CellKind::EightT) < node.vmin(CellKind::SixT),
                "{}",
                node.name()
            );
            assert!(node.vmin(CellKind::SixT) < node.vdd_nominal());
        }
    }

    #[test]
    fn sub_threshold_8t_operation() {
        // Verma & Chandrakasan demonstrated 8T SRAM near 0.35 V.
        let n = TechnologyNode::nm32();
        assert!(n.vmin(CellKind::EightT).value() <= 0.4);
    }

    #[test]
    fn buffer_bits_are_cheaper_than_bitlines() {
        for node in TechnologyNode::all() {
            assert!(
                node.buffer_bit_pj() < node.bitline_read_pj(),
                "{}",
                node.name()
            );
        }
    }

    #[test]
    fn accessors() {
        let n = TechnologyNode::nm45();
        assert_eq!(n.name(), "45nm");
        assert_eq!(n.feature_nm(), 45);
        assert_eq!(TechnologyNode::all().len(), 3);
    }
}
