//! # cache8t-energy — analytical area/energy/latency model for 6T/8T caches
//!
//! The paper's power story has three ingredients, all modelled here:
//!
//! 1. **Voltage scaling and Vmin** (paper §1): dynamic energy scales with
//!    `V²`, but the cache bounds the minimum safe voltage. 6T cells become
//!    unstable well above the logic limit; 8T cells read-decouple the
//!    storage node and scale to near/sub-threshold (Verma & Chandrakasan).
//!    The [`dvfs`] module quantifies the energy headroom that difference
//!    buys.
//! 2. **Array geometry, area and per-operation energy** (paper §2 and
//!    §5.4, which cites CACTI 6.0): [`ArrayModel`] is a deliberately small
//!    CACTI-flavoured analytical model — storage cells plus a
//!    geometry-dependent periphery factor for area, bit-line/word-line
//!    charge for per-row-operation energy, per-cell leakage. Absolute
//!    numbers are representative, not silicon-calibrated; every claim the
//!    workspace reproduces from it is a *ratio* (e.g. the Set-Buffer's
//!    <0.2 % area overhead), which survives constant-factor model error.
//! 3. **Scheme-level energy** (paper §5.5): [`power::SchemeEnergy`]
//!    combines a controller's [`ArrayTraffic`](cache8t_core::ArrayTraffic)
//!    with the array model to estimate total access energy under RMW, WG
//!    and WG+RB — quantifying the paper's argument that replacing array
//!    accesses with Set-Buffer accesses saves power.
//!
//! ## Example
//!
//! ```
//! use cache8t_energy::{ArrayModel, CellKind, TechnologyNode};
//! use cache8t_sim::CacheGeometry;
//!
//! let node = TechnologyNode::nm32();
//! let cache = ArrayModel::for_cache(CacheGeometry::paper_baseline(), node, CellKind::EightT);
//! // Paper §5.4: the Set-Buffer (one 128 B set) is < 0.2% of the cache.
//! let overhead = cache.buffer_capacity_overhead(128);
//! assert!(overhead < 0.002);
//! // An RMW costs a row read plus a row write.
//! let rmw = cache.rmw_energy(node.vdd_nominal());
//! assert!(rmw > cache.row_read_energy(node.vdd_nominal()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod array_model;
pub mod dvfs;
pub mod power;
mod tech;
mod units;

pub use array_model::ArrayModel;
pub use cache8t_sram::CellKind;
pub use tech::TechnologyNode;
pub use units::{Picojoules, SquareMicrons, Volts};
