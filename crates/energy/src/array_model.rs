//! The CACTI-flavoured array model.

use cache8t_sim::CacheGeometry;
use cache8t_sram::CellKind;

use crate::{Picojoules, SquareMicrons, TechnologyNode, Volts};

/// Analytical area/energy model of one SRAM array.
///
/// Organization follows the paper's arrangement: one cache set per row
/// (which is what makes the Set-Buffer exactly one row). Area is storage
/// cells plus a geometry-dependent periphery factor; dynamic energy charges
/// every column of the activated row (bit interleaving means *all* columns
/// toggle on an activation, paper §2) and scales with `V²`; leakage is
/// per-cell.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayModel {
    node: TechnologyNode,
    kind: CellKind,
    rows: u64,
    columns: u64,
}

impl ArrayModel {
    /// Models a cache data array: one row per set, `set_bytes * 8` columns.
    pub fn for_cache(geometry: CacheGeometry, node: TechnologyNode, kind: CellKind) -> Self {
        ArrayModel {
            node,
            kind,
            rows: geometry.num_sets(),
            columns: geometry.set_bytes() * 8,
        }
    }

    /// Models a raw array of `rows` x `columns` cells.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn raw(rows: u64, columns: u64, node: TechnologyNode, kind: CellKind) -> Self {
        assert!(rows > 0 && columns > 0, "array dimensions must be nonzero");
        ArrayModel {
            node,
            kind,
            rows,
            columns,
        }
    }

    /// Total storage bits.
    pub fn bits(&self) -> u64 {
        self.rows * self.columns
    }

    /// The technology node.
    pub fn node(&self) -> TechnologyNode {
        self.node
    }

    /// The cell topology.
    pub fn cell_kind(&self) -> CellKind {
        self.kind
    }

    /// Periphery (decoder, drivers, sense amplifiers, multiplexers) as a
    /// fraction of storage area. Grows mildly with aspect ratio: wide rows
    /// need bigger drivers, tall arrays bigger decoders.
    fn periphery_factor(&self) -> f64 {
        let aspect =
            (self.columns as f64 / self.rows as f64).max(self.rows as f64 / self.columns as f64);
        0.30 + 0.02 * aspect.log2().max(0.0)
    }

    /// Total array area (storage + periphery).
    pub fn area(&self) -> SquareMicrons {
        let storage = self.node.cell_area(self.kind) * self.bits() as f64;
        storage * (1.0 + self.periphery_factor())
    }

    /// Energy of one full-row read (precharge + word line + sensing every
    /// column) at supply voltage `v`.
    pub fn row_read_energy(&self, v: Volts) -> Picojoules {
        let scale = v.energy_scale(self.node.vdd_nominal());
        Picojoules::new(self.columns as f64 * self.node.bitline_read_pj() * scale)
    }

    /// Energy of one full-row write (driving every write bit-line pair) at
    /// supply voltage `v`.
    pub fn row_write_energy(&self, v: Volts) -> Picojoules {
        let scale = v.energy_scale(self.node.vdd_nominal());
        Picojoules::new(self.columns as f64 * self.node.bitline_write_pj() * scale)
    }

    /// Energy of one read-modify-write (row read + row write).
    pub fn rmw_energy(&self, v: Volts) -> Picojoules {
        self.row_read_energy(v) + self.row_write_energy(v)
    }

    /// Energy of accessing `bits` of a latch-based buffer (Set-Buffer /
    /// Tag-Buffer) at supply voltage `v`.
    pub fn buffer_access_energy(&self, bits: u64, v: Volts) -> Picojoules {
        let scale = v.energy_scale(self.node.vdd_nominal());
        Picojoules::new(bits as f64 * self.node.buffer_bit_pj() * scale)
    }

    /// Total leakage power in nanowatts at supply voltage `v` (leakage is
    /// modelled linear in `V` — a common first-order approximation).
    pub fn leakage_nw(&self, v: Volts) -> f64 {
        let scale = v.value() / self.node.vdd_nominal().value();
        self.bits() as f64 * self.node.cell_leakage_nw() * scale
    }

    /// The capacity-ratio area overhead of a buffer of `buffer_bytes`
    /// relative to this array — the paper's §5.4 calculation (a 128 B
    /// Set-Buffer against a 64 KB cache is "less than 0.2 %").
    pub fn buffer_capacity_overhead(&self, buffer_bytes: u64) -> f64 {
        (buffer_bytes * 8) as f64 / self.bits() as f64
    }

    /// An area-based estimate of the same overhead assuming the buffer is
    /// built from latches roughly 4x the SRAM cell area (more conservative
    /// than the paper's capacity ratio).
    pub fn buffer_area_overhead(&self, buffer_bytes: u64) -> f64 {
        let latch_area = self.node.cell_area(self.kind) * 4.0;
        let buffer = latch_area * (buffer_bytes * 8) as f64;
        buffer / self.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_8t() -> ArrayModel {
        ArrayModel::for_cache(
            CacheGeometry::paper_baseline(),
            TechnologyNode::nm32(),
            CellKind::EightT,
        )
    }

    #[test]
    fn cache_mapping_one_set_per_row() {
        let m = baseline_8t();
        assert_eq!(m.bits(), 64 * 1024 * 8);
        assert_eq!(m.cell_kind(), CellKind::EightT);
    }

    #[test]
    fn set_buffer_overhead_below_paper_bound() {
        // Paper §5.4: Set-Buffer = one 128 B set, "less than 0.2% area
        // overhead compared to the overall cache size".
        let m = baseline_8t();
        let overhead = m.buffer_capacity_overhead(128);
        assert!(overhead < 0.002, "overhead {overhead}");
        assert!(overhead > 0.0019, "expected ~128B/64KB = 0.195%");
    }

    #[test]
    fn area_overhead_estimate_is_small_too() {
        let m = baseline_8t();
        let overhead = m.buffer_area_overhead(128);
        assert!(overhead < 0.01, "latch-based estimate {overhead} still <1%");
    }

    #[test]
    fn rmw_costs_more_than_either_phase() {
        let m = baseline_8t();
        let v = m.node().vdd_nominal();
        let rmw = m.rmw_energy(v);
        assert!(rmw > m.row_read_energy(v));
        assert!(rmw > m.row_write_energy(v));
        let sum = m.row_read_energy(v) + m.row_write_energy(v);
        assert!((rmw / sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_scales_quadratically_with_voltage() {
        let m = baseline_8t();
        let full = m.row_read_energy(Volts::new(1.0));
        let half = m.row_read_energy(Volts::new(0.5));
        assert!((half / full - 0.25).abs() < 1e-9);
    }

    #[test]
    fn buffer_access_is_much_cheaper_than_array_access() {
        // Paper §5.5: "replace power hungry cache accesses with accessing a
        // smaller and hence more power efficient structure".
        let m = baseline_8t();
        let v = m.node().vdd_nominal();
        let buffer = m.buffer_access_energy(64, v); // one word
        let array = m.row_read_energy(v);
        assert!(buffer / array < 0.05, "buffer/array = {}", buffer / array);
    }

    #[test]
    fn leakage_scales_with_bits_and_voltage() {
        let m = baseline_8t();
        let v = m.node().vdd_nominal();
        let small = ArrayModel::raw(16, 64, m.node(), CellKind::EightT);
        assert!(m.leakage_nw(v) > small.leakage_nw(v));
        assert!(m.leakage_nw(Volts::new(0.5)) < m.leakage_nw(v));
    }

    #[test]
    fn area_includes_periphery() {
        let m = baseline_8t();
        let storage = m.node().cell_area(CellKind::EightT) * m.bits() as f64;
        assert!(m.area() > storage);
        assert!(m.area() / storage < 1.6, "periphery below 60%");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn raw_rejects_empty() {
        let _ = ArrayModel::raw(0, 8, TechnologyNode::nm32(), CellKind::SixT);
    }
}
