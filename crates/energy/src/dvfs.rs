//! DVFS: voltage/frequency levels and the Vmin bound the cache imposes.
//!
//! The paper's introduction frames everything in terms of DVFS: the more
//! voltage levels a design can actually reach, the closer it operates to
//! the power-optimal point, and the cache — traditionally 6T — is the
//! component that bounds the minimum level. This module quantifies the
//! headroom an 8T cache unlocks.

use serde::{Deserialize, Serialize};

use cache8t_sram::CellKind;

use crate::{TechnologyNode, Volts};

/// One DVFS operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Supply voltage.
    pub voltage: Volts,
    /// Clock frequency relative to the nominal point (1.0 = nominal).
    pub relative_frequency: f64,
    /// Dynamic energy per operation relative to nominal (`V²` scaling).
    pub relative_energy_per_op: f64,
}

/// A ladder of evenly spaced DVFS levels between a floor voltage and the
/// nominal supply.
///
/// Frequency follows the alpha-power law
/// `f ∝ (V - Vt)^alpha / V` with `alpha = 1.3`, normalized to the nominal
/// point; energy per operation follows `V²`.
///
/// # Example
///
/// ```
/// use cache8t_energy::{dvfs::DvfsLadder, CellKind, TechnologyNode};
///
/// let node = TechnologyNode::nm32();
/// let l6 = DvfsLadder::for_cache(node, CellKind::SixT, 8);
/// let l8 = DvfsLadder::for_cache(node, CellKind::EightT, 8);
/// // The 8T cache lets DVFS reach a much lower-energy operating point.
/// let e6 = l6.lowest().relative_energy_per_op;
/// let e8 = l8.lowest().relative_energy_per_op;
/// assert!(e8 < 0.5 * e6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsLadder {
    points: Vec<OperatingPoint>,
}

/// Threshold voltage used by the alpha-power frequency model, in volts.
const V_THRESHOLD: f64 = 0.25;
/// Velocity-saturation exponent of the alpha-power law.
const ALPHA: f64 = 1.3;

fn relative_frequency(v: Volts, vnom: Volts) -> f64 {
    let speed = |x: f64| (x - V_THRESHOLD).max(1e-3).powf(ALPHA) / x;
    speed(v.value()) / speed(vnom.value())
}

impl DvfsLadder {
    /// Builds a ladder of `levels` points from the cache's Vmin (decided by
    /// its cell topology) up to the node's nominal voltage.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn for_cache(node: TechnologyNode, cache_cells: CellKind, levels: usize) -> Self {
        assert!(levels >= 2, "a DVFS ladder needs at least two levels");
        let vmin = node.vmin(cache_cells).value();
        let vnom = node.vdd_nominal().value();
        let points = (0..levels)
            .map(|i| {
                let v = vmin + (vnom - vmin) * i as f64 / (levels - 1) as f64;
                let voltage = Volts::new(v);
                OperatingPoint {
                    voltage,
                    relative_frequency: relative_frequency(voltage, node.vdd_nominal()),
                    relative_energy_per_op: voltage.energy_scale(node.vdd_nominal()),
                }
            })
            .collect();
        DvfsLadder { points }
    }

    /// The operating points, lowest voltage first.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// The lowest (most energy-efficient) operating point.
    pub fn lowest(&self) -> OperatingPoint {
        self.points[0]
    }

    /// The nominal (fastest) operating point.
    pub fn nominal(&self) -> OperatingPoint {
        *self.points.last().expect("ladder is nonempty")
    }

    /// The slowest relative frequency that still meets `demand` (relative
    /// performance in [0, 1]), or `None` if even nominal cannot.
    ///
    /// This is the DVFS governor's decision: run at the lowest level that
    /// meets the performance requirement (paper §1).
    pub fn point_for_demand(&self, demand: f64) -> Option<OperatingPoint> {
        self.points
            .iter()
            .find(|p| p.relative_frequency >= demand)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladders() -> (DvfsLadder, DvfsLadder) {
        let node = TechnologyNode::nm32();
        (
            DvfsLadder::for_cache(node, CellKind::SixT, 8),
            DvfsLadder::for_cache(node, CellKind::EightT, 8),
        )
    }

    #[test]
    fn ladder_is_monotone() {
        let (_, l8) = ladders();
        let pts = l8.points();
        assert_eq!(pts.len(), 8);
        for w in pts.windows(2) {
            assert!(w[0].voltage < w[1].voltage);
            assert!(w[0].relative_frequency < w[1].relative_frequency);
            assert!(w[0].relative_energy_per_op < w[1].relative_energy_per_op);
        }
    }

    #[test]
    fn nominal_point_is_unity() {
        let (_, l8) = ladders();
        let nom = l8.nominal();
        assert!((nom.relative_frequency - 1.0).abs() < 1e-9);
        assert!((nom.relative_energy_per_op - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eight_t_floor_is_much_lower() {
        let (l6, l8) = ladders();
        assert!(l8.lowest().voltage < l6.lowest().voltage);
        // 0.35^2 vs 0.75^2 at Vnom=1.0: more than 4x lower energy floor.
        assert!(l8.lowest().relative_energy_per_op * 4.0 < l6.lowest().relative_energy_per_op);
    }

    #[test]
    fn governor_picks_lowest_sufficient_level() {
        let (_, l8) = ladders();
        let p = l8.point_for_demand(0.5).expect("mid demand is satisfiable");
        assert!(p.relative_frequency >= 0.5);
        // The previous level (if any) must not satisfy the demand.
        let idx = l8
            .points()
            .iter()
            .position(|q| q.voltage == p.voltage)
            .unwrap();
        if idx > 0 {
            assert!(l8.points()[idx - 1].relative_frequency < 0.5);
        }
        assert!(
            l8.point_for_demand(2.0).is_none(),
            "beyond nominal is impossible"
        );
        assert!(l8.point_for_demand(0.0).unwrap().voltage == l8.lowest().voltage);
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn tiny_ladder_rejected() {
        let _ = DvfsLadder::for_cache(TechnologyNode::nm32(), CellKind::SixT, 1);
    }
}
