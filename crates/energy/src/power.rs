//! Scheme-level energy: pricing a controller's traffic ledger.
//!
//! The paper's §5.5 argues (without measuring) that WG and WG+RB reduce
//! power because they replace full-array accesses with Set-Buffer accesses.
//! This module performs that estimate: it prices an
//! [`ArrayTraffic`] ledger against the [`ArrayModel`], charging row
//! operations to the array and grouped/bypassed operations to the buffer.

use std::fmt;

use serde::{Deserialize, Serialize};

use cache8t_core::ArrayTraffic;

use crate::{ArrayModel, Picojoules, Volts};

/// The energy decomposition of one scheme's run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeEnergy {
    /// Energy spent on array row reads (demand reads, RMW read phases,
    /// Set-Buffer fills).
    pub array_reads: Picojoules,
    /// Energy spent on array row writes (RMW write phases, write-backs).
    pub array_writes: Picojoules,
    /// Energy spent on Set-Buffer accesses (grouped writes and bypassed
    /// reads).
    pub buffer: Picojoules,
}

impl SchemeEnergy {
    /// Prices `traffic` against `model` at supply voltage `v`.
    ///
    /// Buffer accesses are charged one 64-bit word plus the Tag-Buffer
    /// compare (~35 tag bits), per operation.
    pub fn price(traffic: &ArrayTraffic, model: &ArrayModel, v: Volts) -> Self {
        let read_ops = traffic.read_port_activations();
        let write_ops = traffic.write_port_activations();
        let buffer_ops = traffic.grouped_writes + traffic.bypassed_reads;
        // One word of data plus a tag comparison per buffered operation.
        let buffer_bits_per_op = 64 + 35;
        SchemeEnergy {
            array_reads: model.row_read_energy(v) * read_ops as f64,
            array_writes: model.row_write_energy(v) * write_ops as f64,
            buffer: model.buffer_access_energy(buffer_bits_per_op, v) * buffer_ops as f64,
        }
    }

    /// Total dynamic access energy.
    pub fn total(&self) -> Picojoules {
        self.array_reads + self.array_writes + self.buffer
    }

    /// Energy saving relative to `baseline` (positive = this scheme is
    /// cheaper).
    pub fn saving_vs(&self, baseline: &SchemeEnergy) -> f64 {
        let base = baseline.total().value();
        if base == 0.0 {
            return 0.0;
        }
        1.0 - self.total().value() / base
    }
}

/// Total energy of a timed run: dynamic access energy plus leakage
/// integrated over the run's duration.
///
/// This closes the loop between the timing model (`cache8t-cpu` reports
/// cycles) and the array model: at low voltage the dynamic term shrinks
/// quadratically but the clock slows, so the run takes longer and leakage
/// integrates over more time — the classic trade-off DVFS governors
/// navigate.
///
/// # Example
///
/// ```
/// use cache8t_core::ArrayTraffic;
/// use cache8t_energy::power::{RunEnergy, SchemeEnergy};
/// use cache8t_energy::{ArrayModel, CellKind, TechnologyNode};
/// use cache8t_sim::CacheGeometry;
///
/// let node = TechnologyNode::nm32();
/// let model = ArrayModel::for_cache(CacheGeometry::paper_baseline(), node, CellKind::EightT);
/// let traffic = ArrayTraffic { demand_reads: 1000, ..ArrayTraffic::default() };
/// let run = RunEnergy::for_run(&traffic, &model, node.vdd_nominal(), 10_000, 2.0);
/// assert!(run.total() > run.dynamic.total());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunEnergy {
    /// Dynamic access energy of the traffic.
    pub dynamic: SchemeEnergy,
    /// Leakage integrated over the run duration.
    pub leakage: Picojoules,
    /// Run duration in nanoseconds.
    pub duration_ns: f64,
}

impl RunEnergy {
    /// Prices a run of `cycles` cycles at `clock_ghz` on `model` at supply
    /// voltage `v`.
    ///
    /// # Panics
    ///
    /// Panics if `clock_ghz` is not positive and finite.
    pub fn for_run(
        traffic: &ArrayTraffic,
        model: &ArrayModel,
        v: Volts,
        cycles: u64,
        clock_ghz: f64,
    ) -> Self {
        assert!(
            clock_ghz.is_finite() && clock_ghz > 0.0,
            "clock frequency must be positive"
        );
        let duration_ns = cycles as f64 / clock_ghz;
        // nW x ns = 1e-18 J = 1e-6 pJ.
        let leakage = Picojoules::new(model.leakage_nw(v) * duration_ns * 1e-6);
        RunEnergy {
            dynamic: SchemeEnergy::price(traffic, model, v),
            leakage,
            duration_ns,
        }
    }

    /// Total energy (dynamic + leakage).
    pub fn total(&self) -> Picojoules {
        self.dynamic.total() + self.leakage
    }
}

impl fmt::Display for RunEnergy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {} over {:.1} ns (dynamic {}, leakage {})",
            self.total(),
            self.duration_ns,
            self.dynamic.total(),
            self.leakage
        )
    }
}

impl fmt::Display for SchemeEnergy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {} (array reads {}, array writes {}, buffer {})",
            self.total(),
            self.array_reads,
            self.array_writes,
            self.buffer
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechnologyNode;
    use cache8t_sim::CacheGeometry;
    use cache8t_sram::CellKind;

    fn model() -> ArrayModel {
        ArrayModel::for_cache(
            CacheGeometry::paper_baseline(),
            TechnologyNode::nm32(),
            CellKind::EightT,
        )
    }

    fn rmw_like() -> ArrayTraffic {
        ArrayTraffic {
            demand_reads: 650,
            demand_writes: 350,
            rmw_read_phases: 350,
            rmw_ops: 350,
            ..ArrayTraffic::default()
        }
    }

    fn wg_like() -> ArrayTraffic {
        ArrayTraffic {
            demand_reads: 650,
            buffer_fills: 150,
            writebacks: 100,
            grouped_writes: 200,
            silent_writebacks_elided: 50,
            ..ArrayTraffic::default()
        }
    }

    #[test]
    fn wg_spends_less_than_rmw() {
        let m = model();
        let v = m.node().vdd_nominal();
        let rmw = SchemeEnergy::price(&rmw_like(), &m, v);
        let wg = SchemeEnergy::price(&wg_like(), &m, v);
        let saving = wg.saving_vs(&rmw);
        assert!(saving > 0.15, "saving {saving}");
    }

    #[test]
    fn buffer_energy_is_minor() {
        let m = model();
        let v = m.node().vdd_nominal();
        let wg = SchemeEnergy::price(&wg_like(), &m, v);
        assert!(wg.buffer.value() < 0.05 * wg.total().value());
    }

    #[test]
    fn totals_decompose() {
        let m = model();
        let v = m.node().vdd_nominal();
        let e = SchemeEnergy::price(&rmw_like(), &m, v);
        let sum = e.array_reads + e.array_writes + e.buffer;
        assert!((e.total() / sum - 1.0).abs() < 1e-12);
        assert_eq!(e.buffer.value(), 0.0, "pure RMW never touches a buffer");
    }

    #[test]
    fn saving_vs_zero_baseline_is_zero() {
        let m = model();
        let v = m.node().vdd_nominal();
        let zero = SchemeEnergy::price(&ArrayTraffic::default(), &m, v);
        let e = SchemeEnergy::price(&rmw_like(), &m, v);
        assert_eq!(e.saving_vs(&zero), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let m = model();
        let e = SchemeEnergy::price(&rmw_like(), &m, m.node().vdd_nominal());
        assert!(e.to_string().contains("total"));
    }

    #[test]
    fn run_energy_integrates_leakage_over_time() {
        let m = model();
        let v = m.node().vdd_nominal();
        let short = RunEnergy::for_run(&rmw_like(), &m, v, 1_000, 2.0);
        let long = RunEnergy::for_run(&rmw_like(), &m, v, 100_000, 2.0);
        assert_eq!(
            short.dynamic, long.dynamic,
            "dynamic depends only on traffic"
        );
        assert!(long.leakage > short.leakage);
        assert!(long.total() > short.total());
        assert!(!long.to_string().is_empty());
    }

    #[test]
    fn low_voltage_trades_dynamic_for_leakage_time() {
        use crate::Volts;
        let m = model();
        let t = rmw_like();
        // Same work: at half voltage the clock is slower (say 4x), so the
        // run takes 4x the cycles-time; dynamic drops 4x, leakage grows.
        let nominal = RunEnergy::for_run(&t, &m, m.node().vdd_nominal(), 10_000, 2.0);
        let scaled = RunEnergy::for_run(&t, &m, Volts::new(0.5), 10_000, 0.5);
        assert!(scaled.dynamic.total() < nominal.dynamic.total());
        assert!(scaled.leakage > nominal.leakage);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn run_energy_rejects_bad_clock() {
        let m = model();
        let _ = RunEnergy::for_run(&rmw_like(), &m, m.node().vdd_nominal(), 10, 0.0);
    }
}
