//! Generate-once trace store shared by every sweep job.
//!
//! A sweep replays the *same* synthetic trace against many cache
//! configurations (the paper's own methodology: one Pin trace, many
//! cache models), so the store keys traces by everything that affects
//! generation — profile parameters, seed, and length — and hands out
//! `Arc<Trace>` clones. The first requester generates (or loads), every
//! concurrent requester blocks on the same cell, and later requesters
//! hit memory.
//!
//! With a directory configured the store is additionally backed by the
//! existing `C8TT` on-disk format (see `cache8t_trace`'s `io` module),
//! so repeated *invocations* skip generation entirely. A truncated,
//! corrupt, or wrong-length cache file is never fatal: the trace is
//! regenerated and the file rewritten.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use cache8t_obs::timeline;
use cache8t_sim::CacheGeometry;
use cache8t_trace::{ProfiledGenerator, Trace, TraceGenerator, WorkloadProfile};

/// Environment variable selecting the on-disk location: a directory
/// path, or `off` to force a purely in-memory store.
pub const STORE_ENV_VAR: &str = "CACHE8T_TRACE_STORE";

/// The conventional on-disk location (`cache8t sweep --trace-store`,
/// CI). Disk backing is opt-in: generating a synthetic trace is cheap
/// enough that the in-process `Arc<Trace>` cache is the right default,
/// and on slow filesystems reading a cached multi-megabyte `C8TT` file
/// can cost more than regenerating it.
pub const DEFAULT_STORE_DIR: &str = "results/traces";

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TraceKey {
    name: String,
    fingerprint: u64,
    seed: u64,
    ops: usize,
}

/// Cumulative counters describing how requests were satisfied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Traces generated from scratch.
    pub generated: u64,
    /// Requests served from an already-resident `Arc<Trace>`.
    pub mem_hits: u64,
    /// Traces loaded from a valid on-disk cache file.
    pub disk_hits: u64,
    /// Corrupt/truncated/wrong-length cache files that were regenerated.
    pub recovered: u64,
    /// Cache files that could not be written (best-effort, non-fatal).
    pub write_errors: u64,
}

/// Thread-safe, generate-once cache of synthetic traces.
#[derive(Debug, Default)]
pub struct TraceStore {
    dir: Option<PathBuf>,
    cells: Mutex<HashMap<TraceKey, Arc<OnceLock<Arc<Trace>>>>>,
    generated: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    recovered: AtomicU64,
    write_errors: AtomicU64,
}

impl TraceStore {
    /// A purely in-memory store (no disk backing).
    pub fn in_memory() -> Self {
        TraceStore::default()
    }

    /// A store backed by `C8TT` files under `dir` (created lazily).
    pub fn persistent(dir: impl Into<PathBuf>) -> Self {
        TraceStore {
            dir: Some(dir.into()),
            ..TraceStore::default()
        }
    }

    /// The harness default: in-memory, unless the `CACHE8T_TRACE_STORE`
    /// environment variable names a directory to back the store with
    /// (`off` explicitly selects in-memory).
    pub fn from_env() -> Self {
        match std::env::var(STORE_ENV_VAR) {
            Ok(v) if v.eq_ignore_ascii_case("off") => TraceStore::in_memory(),
            Ok(v) if !v.is_empty() => TraceStore::persistent(v),
            _ => TraceStore::in_memory(),
        }
    }

    /// The backing directory, if disk backing is enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Returns the trace for `profile` at `seed` with `ops` operations,
    /// generating it (at the paper's reference geometry, like the
    /// experiment runner) on first request. Concurrent requests for the
    /// same key generate exactly once.
    pub fn get(&self, profile: &WorkloadProfile, seed: u64, ops: usize) -> Arc<Trace> {
        let key = TraceKey {
            name: profile.name.clone(),
            fingerprint: profile.fingerprint(),
            seed,
            ops,
        };
        let cell = {
            // Recover from a poisoned map rather than propagating a
            // panic into every pool worker that shares the store: the
            // map itself is always left structurally valid (the guarded
            // section only does entry/clone), so the poison flag is the
            // only thing wrong.
            let mut cells = self
                .cells
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(cells.entry(key.clone()).or_default())
        };
        if let Some(trace) = cell.get() {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            timeline::instant("trace-mem-hit", "store");
            return Arc::clone(trace);
        }
        Arc::clone(cell.get_or_init(|| Arc::new(self.load_or_generate(&key, profile))))
    }

    /// Snapshot of the store counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            generated: self.generated.load(Ordering::Relaxed),
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }

    /// The cache-file path a key maps to (for tests and tooling).
    pub fn path_for(&self, profile: &WorkloadProfile, seed: u64, ops: usize) -> Option<PathBuf> {
        self.dir.as_ref().map(|dir| {
            let sanitized: String = profile
                .name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            dir.join(format!(
                "{sanitized}-{:016x}-s{seed}-n{ops}.c8tt",
                profile.fingerprint()
            ))
        })
    }

    fn load_or_generate(&self, key: &TraceKey, profile: &WorkloadProfile) -> Trace {
        let path = self.path_for(profile, key.seed, key.ops);
        if let Some(path) = &path {
            match Self::load(path, key.ops) {
                Ok(Some(trace)) => {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    timeline::instant("trace-disk-hit", "store");
                    return trace;
                }
                Ok(None) => {} // no cache file yet
                Err(reason) => {
                    // Never fatal: a damaged cache entry costs one
                    // regeneration, not the sweep.
                    self.recovered.fetch_add(1, Ordering::Relaxed);
                    eprintln!("trace store: regenerating {} ({reason})", path.display());
                }
            }
        }
        let slice =
            cache8t_obs::TimelineSpan::enter_lazy(|| format!("generate {}", key.name), "store");
        let trace =
            ProfiledGenerator::new(profile.clone(), CacheGeometry::paper_baseline(), key.seed)
                .collect(key.ops);
        drop(slice);
        self.generated.fetch_add(1, Ordering::Relaxed);
        if let Some(path) = &path {
            if let Err(e) = Self::persist(path, &trace) {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("trace store: cannot write {} ({e})", path.display());
            }
        }
        trace
    }

    /// Loads and validates a cache file. `Ok(None)` means "no file";
    /// `Err` carries the reason the file is unusable.
    fn load(path: &Path, expected_ops: usize) -> Result<Option<Trace>, String> {
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::NotFound | io::ErrorKind::NotADirectory
                ) =>
            {
                return Ok(None)
            }
            Err(e) => return Err(format!("unreadable: {e}")),
        };
        let trace = Trace::read_from(bytes.as_slice()).map_err(|e| e.to_string())?;
        if trace.len() != expected_ops {
            return Err(format!(
                "wrong length: {} ops cached, {expected_ops} expected",
                trace.len()
            ));
        }
        Ok(Some(trace))
    }

    /// Best-effort atomic write: temp file in the same directory, then
    /// rename, so concurrent processes never observe a torn file.
    fn persist(path: &Path, trace: &Trace) -> io::Result<()> {
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        fs::create_dir_all(dir)?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let mut writer = io::BufWriter::new(fs::File::create(&tmp)?);
        trace.write_to(&mut writer)?;
        io::Write::flush(&mut writer)?;
        drop(writer);
        fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache8t_trace::profiles;

    fn profile() -> WorkloadProfile {
        profiles::by_name("gcc").expect("gcc in suite")
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cache8t-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_store_generates_once_and_shares() {
        let store = TraceStore::in_memory();
        let a = store.get(&profile(), 3, 500);
        let b = store.get(&profile(), 3, 500);
        assert!(Arc::ptr_eq(&a, &b));
        let s = store.stats();
        assert_eq!((s.generated, s.mem_hits, s.disk_hits), (1, 1, 0));
    }

    #[test]
    fn distinct_keys_get_distinct_traces() {
        let store = TraceStore::in_memory();
        let a = store.get(&profile(), 3, 500);
        let b = store.get(&profile(), 4, 500);
        let c = store.get(&profile(), 3, 600);
        assert_ne!(a.as_ref(), b.as_ref());
        assert_ne!(a.len(), c.len());
        // Same name, different parameters: the fingerprint must split them.
        let mut tweaked = profile();
        tweaked.silent_fraction += 0.1;
        let d = store.get(&tweaked, 3, 500);
        assert_ne!(a.as_ref(), d.as_ref());
        assert_eq!(store.stats().generated, 4);
    }

    #[test]
    fn persistent_store_round_trips_through_disk() {
        let dir = temp_dir("roundtrip");
        let first = TraceStore::persistent(&dir);
        let a = store_get_cloned(&first, 7, 400);
        assert_eq!(first.stats().generated, 1);
        assert!(first
            .path_for(&profile(), 7, 400)
            .expect("persistent store has paths")
            .is_file());

        // A fresh store (a new invocation) loads the same stream from disk.
        let second = TraceStore::persistent(&dir);
        let b = store_get_cloned(&second, 7, 400);
        assert_eq!(a, b, "disk round-trip must be replay-identical");
        let s = second.stats();
        assert_eq!((s.generated, s.disk_hits), (0, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    fn store_get_cloned(store: &TraceStore, seed: u64, ops: usize) -> Trace {
        store.get(&profile(), seed, ops).as_ref().clone()
    }

    #[test]
    fn corrupt_cache_file_is_regenerated_not_fatal() {
        let dir = temp_dir("corrupt");
        let path = {
            let store = TraceStore::persistent(&dir);
            let _ = store.get(&profile(), 9, 300);
            store.path_for(&profile(), 9, 300).expect("path")
        };

        // Truncate mid-record.
        let bytes = fs::read(&path).expect("cache file exists");
        fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        let store = TraceStore::persistent(&dir);
        let truncated = store.get(&profile(), 9, 300);
        assert_eq!(truncated.len(), 300);
        let s = store.stats();
        assert_eq!((s.recovered, s.generated), (1, 1));

        // Outright garbage (bad magic).
        fs::write(&path, b"this is not a trace").expect("garbage");
        let store = TraceStore::persistent(&dir);
        let garbage = store.get(&profile(), 9, 300);
        assert_eq!(garbage.as_ref(), truncated.as_ref());
        assert_eq!(store.stats().recovered, 1);

        // A stale file of the wrong length is also replaced...
        let short = TraceStore::in_memory().get(&profile(), 9, 100);
        let mut buffer = Vec::new();
        short.write_to(&mut buffer).expect("vec write");
        fs::write(&path, &buffer).expect("stale");
        let store = TraceStore::persistent(&dir);
        assert_eq!(store.get(&profile(), 9, 300).len(), 300);
        assert_eq!(store.stats().recovered, 1);

        // ...and the rewritten file is valid again.
        let store = TraceStore::persistent(&dir);
        let _ = store.get(&profile(), 9, 300);
        let s = store.stats();
        assert_eq!((s.disk_hits, s.recovered), (1, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_map_recovers_instead_of_cascading_panics() {
        let store = Arc::new(TraceStore::in_memory());
        let poisoner = Arc::clone(&store);
        // Panic while holding the map lock, as a crashing pool worker
        // would; the panic must stay contained to that thread.
        let result = std::thread::spawn(move || {
            let _guard = poisoner.cells.lock().unwrap();
            panic!("worker died mid-lookup");
        })
        .join();
        assert!(result.is_err(), "the poisoning thread must have panicked");
        // Every later requester still gets its trace.
        let trace = store.get(&profile(), 5, 100);
        assert_eq!(trace.len(), 100);
        assert_eq!(store.stats().generated, 1);
    }

    #[test]
    fn unwritable_dir_degrades_to_memory_only() {
        // A file used as the "directory" makes every write fail.
        let blocker =
            std::env::temp_dir().join(format!("cache8t-store-blocker-{}", std::process::id()));
        fs::write(&blocker, b"occupied").expect("blocker file");
        let store = TraceStore::persistent(blocker.join("sub"));
        let trace = store.get(&profile(), 2, 200);
        assert_eq!(trace.len(), 200);
        assert_eq!(store.stats().write_errors, 1);
        let _ = fs::remove_file(&blocker);
    }
}
