//! Streamed replay plumbing: chunk sources and double-buffered prefetch.
//!
//! The materialized path hands the replay loop a whole `&Trace`; the
//! streaming path hands it a [`ChunkSource`] — anything that yields the
//! trace's [`TraceChunk`]s in order. [`PrefetchedChunks`] wraps a source
//! with a producer thread and a capacity-1 rendezvous channel, so at any
//! moment at most two chunks are alive: the one the replay loop is
//! consuming and the one the producer is generating behind it. That is the
//! whole memory story of a streamed replay — RSS is bounded by
//! `2 × chunk_ops × sizeof(MemOp)` plus the controller, for any trace
//! length.

use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;

use cache8t_trace::{ChunkedGenerator, TraceChunk, TraceGenerator};

/// A source of trace chunks in stream order.
///
/// `next_chunk` returns `None` at end of stream. Chunks arrive as
/// `Arc<TraceChunk>` so a shared cache (the streaming [`TraceStore`]
/// mode) can hand the same generated chunk to several replay jobs
/// without copying it.
///
/// [`TraceStore`]: crate::TraceStore
pub trait ChunkSource {
    /// Produces the next chunk, or `None` when the stream is exhausted.
    fn next_chunk(&mut self) -> Option<Arc<TraceChunk>>;
}

/// A [`ChunkedGenerator`] is a chunk source: it generates on demand.
impl<G: TraceGenerator> ChunkSource for ChunkedGenerator<G> {
    fn next_chunk(&mut self) -> Option<Arc<TraceChunk>> {
        ChunkedGenerator::next_chunk(self).map(Arc::new)
    }
}

/// An in-memory chunk list is a chunk source (used by tests and by the
/// lockstep conformance harness).
impl ChunkSource for std::vec::IntoIter<Arc<TraceChunk>> {
    fn next_chunk(&mut self) -> Option<Arc<TraceChunk>> {
        self.next()
    }
}

/// Double-buffered prefetch over a [`ChunkSource`].
///
/// A producer thread drains the source into a capacity-1
/// [`sync_channel`]: while the consumer replays chunk *k*, the producer
/// is already generating chunk *k + 1* and blocks handing it over until
/// chunk *k* is done. Generation and replay overlap, and the number of
/// resident chunks never exceeds two.
///
/// Dropping the prefetcher mid-stream shuts the producer down cleanly:
/// the receiver closes, the producer's blocked send fails, and the
/// thread is joined.
#[derive(Debug)]
pub struct PrefetchedChunks {
    receiver: Option<Receiver<Arc<TraceChunk>>>,
    producer: Option<JoinHandle<()>>,
}

impl PrefetchedChunks {
    /// Spawns the producer thread over `source`.
    pub fn spawn<S: ChunkSource + Send + 'static>(mut source: S) -> Self {
        let (sender, receiver) = sync_channel::<Arc<TraceChunk>>(1);
        let producer = std::thread::Builder::new()
            .name("chunk-prefetch".to_owned())
            .spawn(move || {
                while let Some(chunk) = source.next_chunk() {
                    // Err means the consumer dropped the receiver —
                    // replay is over (or abandoned), stop producing.
                    if sender.send(chunk).is_err() {
                        break;
                    }
                }
            })
            .expect("spawning the chunk-prefetch thread");
        PrefetchedChunks {
            receiver: Some(receiver),
            producer: Some(producer),
        }
    }
}

impl ChunkSource for PrefetchedChunks {
    fn next_chunk(&mut self) -> Option<Arc<TraceChunk>> {
        self.receiver.as_ref()?.recv().ok()
    }
}

impl Drop for PrefetchedChunks {
    fn drop(&mut self) {
        // Close the channel first so a producer blocked in send() wakes
        // up and exits, then join it. A producer that panicked already
        // poisoned nothing — the channel just closes early.
        drop(self.receiver.take());
        if let Some(handle) = self.producer.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache8t_sim::CacheGeometry;
    use cache8t_trace::{profiles, ProfiledGenerator};

    fn chunked(seed: u64, chunk_ops: usize, total: u64) -> ChunkedGenerator<ProfiledGenerator> {
        let profile = profiles::by_name("gcc").expect("gcc profile exists");
        let generator =
            ProfiledGenerator::new(profile.clone(), CacheGeometry::paper_baseline(), seed);
        ChunkedGenerator::new(generator, chunk_ops, total)
    }

    fn drain(mut source: impl ChunkSource) -> Vec<Arc<TraceChunk>> {
        let mut chunks = Vec::new();
        while let Some(chunk) = source.next_chunk() {
            chunks.push(chunk);
        }
        chunks
    }

    #[test]
    fn prefetch_preserves_the_chunk_sequence() {
        let direct = drain(chunked(5, 1000, 4_321));
        let prefetched = drain(PrefetchedChunks::spawn(chunked(5, 1000, 4_321)));
        assert_eq!(direct.len(), prefetched.len());
        for (a, b) in direct.iter().zip(prefetched.iter()) {
            assert_eq!(a.as_ref(), b.as_ref());
        }
    }

    #[test]
    fn dropping_midstream_stops_the_producer() {
        let mut p = PrefetchedChunks::spawn(chunked(5, 64, 1_000_000));
        let first = p.next_chunk().expect("stream has chunks");
        assert_eq!(first.start_op(), 0);
        // Dropping with the producer blocked on a full channel must not
        // hang or leak the thread.
        drop(p);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let mut p = PrefetchedChunks::spawn(chunked(5, 64, 0));
        assert!(p.next_chunk().is_none());
    }
}
