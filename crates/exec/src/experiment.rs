//! The per-benchmark experiment runner shared by every harness binary
//! and the sweep engine.
//!
//! Lived in `cache8t-bench` until the execution engine arrived; it sits
//! here now so both the serial figure binaries (through the
//! `cache8t_bench::experiment` re-exports) and the parallel sweep
//! scheduler drive the exact same code — which is what makes "the sweep
//! output is byte-identical to the serial run" checkable rather than
//! aspirational.

use serde::Serialize;

use cache8t_core::{
    ArrayTraffic, Controller, ConventionalController, CountingPolicy, RmwController, WgController,
    WgRbController,
};
use cache8t_obs::{
    span, MetricRegistry, Sampler, SamplerConfig, SeriesSample, SpanGuard, TraceEvent,
};
use cache8t_sim::{CacheGeometry, CacheStats, ReplacementKind};
use cache8t_trace::analyze::{StreamStats, StreamStatsAccumulator};
use cache8t_trace::{
    profiles, warmup_split, DecodedBatch, MemOp, ProfiledGenerator, Trace, TraceGenerator,
    WorkloadProfile,
};

use crate::stream::ChunkSource;

/// How a run is set up: geometry, stream length and warm-up.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RunConfig {
    /// Cache geometry under test.
    #[serde(skip)]
    pub geometry: CacheGeometry,
    /// Measured operations per benchmark.
    pub ops: usize,
    /// Warm-up operations before counters reset (the paper fast-forwards
    /// 1 B of its 10 B instructions; we keep the same 10 % ratio).
    pub warmup_ops: usize,
    /// Seed for the trace generator.
    pub seed: u64,
}

impl RunConfig {
    /// A config over `geometry` with `ops` measured operations, 10 %
    /// warm-up, and the given seed.
    pub fn new(geometry: CacheGeometry, ops: usize, seed: u64) -> Self {
        RunConfig {
            geometry,
            ops,
            warmup_ops: ops / 10,
            seed,
        }
    }

    /// Total generated operations (warm-up + measured).
    pub fn total_ops(&self) -> usize {
        self.warmup_ops + self.ops
    }
}

/// One controller's outcome on one benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct SchemeResult {
    /// Scheme name (`"6T"`, `"RMW"`, `"WG"`, `"WG+RB"`).
    pub scheme: &'static str,
    /// Array activations under demand-only counting.
    pub array_accesses: u64,
    /// The full traffic ledger.
    pub traffic: ArrayTraffic,
    /// Request-level hit/miss statistics.
    pub stats: CacheStats,
    /// Metric-registry snapshot (counters, gauges, histograms) taken
    /// after the measured region; `Null` when the controller has no
    /// observability bundle.
    pub metrics: serde_json::Value,
    /// Structural trace events recorded during the measured region.
    /// Empty unless `CACHE8T_TRACE` is `event` or `verbose`; excluded
    /// from the serialized result (use `--trace-out` for the JSONL).
    #[serde(skip)]
    pub events: Vec<TraceEvent>,
    /// The live registry behind `metrics`, kept for merging and
    /// terminal rendering (`report_card`); excluded from JSON.
    #[serde(skip)]
    pub registry: MetricRegistry,
    /// Windowed telemetry samples recorded during the replay. Empty
    /// unless the run was sampled (see [`run_scheme_sampled`]);
    /// excluded from the serialized result (use `--series-out` for the
    /// JSONL), which keeps sweep documents byte-identical whether or
    /// not a series was requested.
    #[serde(skip)]
    pub series: Vec<SeriesSample>,
}

/// All schemes' outcomes on one benchmark, plus the measured stream
/// statistics.
#[derive(Debug, Clone, Serialize)]
pub struct BenchmarkResult {
    /// Benchmark name.
    pub name: String,
    /// Measured Figure-3/4/5 statistics of the generated stream.
    pub stream: StreamStats,
    /// Conventional (6T) controller outcome.
    pub conventional: SchemeResult,
    /// RMW baseline outcome.
    pub rmw: SchemeResult,
    /// Write Grouping outcome.
    pub wg: SchemeResult,
    /// Write Grouping + Read Bypassing outcome.
    pub wgrb: SchemeResult,
}

impl BenchmarkResult {
    /// RMW's access increase over the conventional cache (the paper's ">32 %
    /// on average, max 47 %" motivation).
    pub fn rmw_increase(&self) -> f64 {
        if self.conventional.array_accesses == 0 {
            return 0.0;
        }
        self.rmw.array_accesses as f64 / self.conventional.array_accesses as f64 - 1.0
    }

    /// WG's access reduction vs RMW (the left bars of Figures 9–11).
    pub fn wg_reduction(&self) -> f64 {
        self.wg
            .traffic
            .reduction_vs(&self.rmw.traffic, CountingPolicy::DemandOnly)
    }

    /// WG+RB's access reduction vs RMW (the right bars of Figures 9–11).
    pub fn wgrb_reduction(&self) -> f64 {
        self.wgrb
            .traffic
            .reduction_vs(&self.rmw.traffic, CountingPolicy::DemandOnly)
    }

    /// The four scheme results in canonical order.
    pub fn schemes(&self) -> [&SchemeResult; 4] {
        [&self.conventional, &self.rmw, &self.wg, &self.wgrb]
    }
}

/// The four controller schemes every benchmark runs through, in the
/// canonical (6T, RMW, WG, WG+RB) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Conventional 6T-style cache (one array access per write).
    Conventional,
    /// 8T read-modify-write baseline.
    Rmw,
    /// Write Grouping.
    Wg,
    /// Write Grouping + Read Bypassing.
    WgRb,
}

impl SchemeKind {
    /// All four schemes in canonical order.
    pub const ALL: [SchemeKind; 4] = [
        SchemeKind::Conventional,
        SchemeKind::Rmw,
        SchemeKind::Wg,
        SchemeKind::WgRb,
    ];

    /// The display name the controller itself reports.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Conventional => "6T",
            SchemeKind::Rmw => "RMW",
            SchemeKind::Wg => "WG",
            SchemeKind::WgRb => "WG+RB",
        }
    }

    /// Builds the controller for this scheme over `geometry`.
    pub fn build(self, geometry: CacheGeometry) -> Box<dyn Controller> {
        let lru = ReplacementKind::Lru;
        match self {
            SchemeKind::Conventional => Box::new(ConventionalController::new(geometry, lru)),
            SchemeKind::Rmw => Box::new(RmwController::new(geometry, lru)),
            SchemeKind::Wg => Box::new(WgController::new(geometry, lru)),
            SchemeKind::WgRb => Box::new(WgRbController::new(geometry, lru)),
        }
    }
}

/// Ops per pre-decoded sub-batch on the batched replay paths.
///
/// Large enough to amortize the decode pass and keep the per-batch loop
/// overhead negligible; small enough that the decoded columns (~41 B/op)
/// stay cache-resident and the streamed replay's memory stays bounded by
/// the chunk size, not the trace length.
const REPLAY_BATCH_OPS: usize = 8192;

/// Whether the replay loops use the pre-decoded batch fast path.
///
/// On by default; `CACHE8T_NO_BATCH=1` forces the per-op path. CI uses
/// the switch to diff batched-vs-per-op sweep documents byte-for-byte.
fn batching_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("CACHE8T_NO_BATCH").map_or(true, |v| v != "1"))
}

/// Replays `ops` — whose global indices start at `base_index` — through
/// `controller` in [`REPLAY_BATCH_OPS`]-sized pre-decoded sub-batches.
///
/// The warm-up counter reset fires immediately before the op with global
/// index `warmup`, exactly where the per-op loop's `i == warmup` check
/// would fire it: a sub-batch containing the boundary is split there
/// (possibly at its very first op), and a `warmup` at or past the end of
/// the stream never resets. `batch` is caller-provided scratch so its
/// column allocations survive across chunks.
pub fn replay_ops_batched(
    controller: &mut dyn Controller,
    ops: &[MemOp],
    base_index: u64,
    warmup: u64,
    batch: &mut DecodedBatch,
) {
    let mut index = base_index;
    for sub in ops.chunks(REPLAY_BATCH_OPS) {
        let end = index + sub.len() as u64;
        batch.decode(sub);
        if index <= warmup && warmup < end {
            let split = (warmup - index) as usize;
            controller.access_batch(batch, 0..split);
            controller.reset_counters();
            controller.access_batch(batch, split..sub.len());
        } else {
            controller.access_batch(batch, 0..sub.len());
        }
        index = end;
    }
}

/// Replays `trace` through `controller` with the standard warm-up
/// protocol and snapshots its statistics and telemetry.
pub fn run_scheme(
    controller: &mut dyn Controller,
    trace: &Trace,
    warmup_ops: usize,
) -> SchemeResult {
    // The controller name is 'static, so it doubles as the span label:
    // the span report breaks replay time down per scheme.
    let _span = SpanGuard::enter(controller.name());
    if batching_enabled() {
        let mut batch = DecodedBatch::new(controller.cache().geometry());
        replay_ops_batched(controller, trace.ops(), 0, warmup_ops as u64, &mut batch);
    } else {
        for (i, op) in trace.iter().enumerate() {
            if i == warmup_ops {
                controller.reset_counters();
            }
            controller.access(op);
        }
    }
    controller.flush();
    finish_scheme(controller, Vec::new())
}

/// [`run_scheme`] with a continuous-telemetry [`Sampler`] attached:
/// every `sampler` cadence window diffs the controller's registry and
/// probes its buffer occupancy. The sampler's retained ring lands in
/// [`SchemeResult::series`]; an attached writer has already streamed
/// every window as JSONL.
///
/// The unsampled [`run_scheme`] keeps its own tight loop, so replays
/// without telemetry pay nothing for this feature.
///
/// # Panics
///
/// Panics if the sampler's writer fails — series I/O errors are
/// programming/environment errors at this layer, callers wanting
/// recoverable I/O should write the returned series themselves.
pub fn run_scheme_sampled(
    controller: &mut dyn Controller,
    trace: &Trace,
    warmup_ops: usize,
    sampler: &mut Sampler,
) -> SchemeResult {
    let _span = SpanGuard::enter(controller.name());
    if let Some(obs) = controller.obs() {
        sampler.rebaseline(obs.registry());
    }
    for (i, op) in trace.iter().enumerate() {
        if i == warmup_ops {
            controller.reset_counters();
            if let Some(obs) = controller.obs() {
                sampler.rebaseline(obs.registry());
            }
        }
        controller.access(op);
        if sampler.note_op() {
            if let Some(obs) = controller.obs() {
                let occupancy = controller.occupancy().unwrap_or_default();
                sampler
                    .sample(obs.registry(), occupancy)
                    .expect("series writer failed");
            }
        }
    }
    controller.flush();
    if let Some(obs) = controller.obs() {
        let occupancy = controller.occupancy().unwrap_or_default();
        sampler
            .finish(obs.registry(), occupancy)
            .expect("series writer failed");
    }
    finish_scheme(controller, sampler.take_ring())
}

/// [`run_scheme`] over a [`ChunkSource`] instead of a materialized
/// trace: chunks are consumed in place, so memory stays bounded by the
/// chunk size regardless of trace length.
///
/// Bit-identical to the materialized runner: the chunk sequence carries
/// the same ops in the same order, the warm-up counter reset fires
/// before the op with global index `warmup_ops` exactly as the indexed
/// loop would (including `warmup_ops == 0`, a reset on a chunk seam,
/// and a warm-up longer than the stream, which never resets), and the
/// end-of-stream `flush()` is unchanged.
pub fn run_scheme_streamed<S: ChunkSource>(
    controller: &mut dyn Controller,
    mut chunks: S,
    warmup_ops: usize,
) -> SchemeResult {
    let _span = SpanGuard::enter(controller.name());
    let warmup = warmup_ops as u64;
    let mut index = 0u64;
    // The batch is allocated once and reused across chunks; `None` means
    // the per-op fallback (`CACHE8T_NO_BATCH=1`).
    let mut batch = batching_enabled().then(|| DecodedBatch::new(controller.cache().geometry()));
    while let Some(chunk) = chunks.next_chunk() {
        let ops = chunk.ops();
        let end = index + ops.len() as u64;
        if let Some(batch) = batch.as_mut() {
            replay_ops_batched(controller, ops, index, warmup, batch);
        } else if index <= warmup && warmup < end {
            // The warm-up boundary lands inside this chunk (possibly at
            // its very first op): replay up to it, reset, replay on.
            let split = (warmup - index) as usize;
            controller.access_slice(&ops[..split]);
            controller.reset_counters();
            controller.access_slice(&ops[split..]);
        } else {
            controller.access_slice(ops);
        }
        index = end;
    }
    controller.flush();
    finish_scheme(controller, Vec::new())
}

/// [`run_scheme_sampled`] over a [`ChunkSource`]: the sampler operates
/// on borrowed chunk ops with global indexing, so window boundaries and
/// deltas are byte-identical to the materialized sampled replay no
/// matter where chunk seams fall. At every seam the sampler's writer is
/// flushed (completed windows become visible to live consumers) without
/// changing the emitted bytes.
///
/// # Panics
///
/// Panics if the sampler's writer fails, like [`run_scheme_sampled`].
pub fn run_scheme_streamed_sampled<S: ChunkSource>(
    controller: &mut dyn Controller,
    mut chunks: S,
    warmup_ops: usize,
    sampler: &mut Sampler,
) -> SchemeResult {
    let _span = SpanGuard::enter(controller.name());
    if let Some(obs) = controller.obs() {
        sampler.rebaseline(obs.registry());
    }
    let warmup = warmup_ops as u64;
    let mut index = 0u64;
    while let Some(chunk) = chunks.next_chunk() {
        for op in chunk.ops() {
            if index == warmup {
                controller.reset_counters();
                if let Some(obs) = controller.obs() {
                    sampler.rebaseline(obs.registry());
                }
            }
            controller.access(op);
            if sampler.note_op() {
                if let Some(obs) = controller.obs() {
                    let occupancy = controller.occupancy().unwrap_or_default();
                    sampler
                        .sample(obs.registry(), occupancy)
                        .expect("series writer failed");
                }
            }
            index += 1;
        }
        sampler.flush_writer().expect("series writer failed");
    }
    controller.flush();
    if let Some(obs) = controller.obs() {
        let occupancy = controller.occupancy().unwrap_or_default();
        sampler
            .finish(obs.registry(), occupancy)
            .expect("series writer failed");
    }
    finish_scheme(controller, sampler.take_ring())
}

/// Snapshots a replayed controller into a [`SchemeResult`].
fn finish_scheme(controller: &mut dyn Controller, series: Vec<SeriesSample>) -> SchemeResult {
    let (metrics, events, registry) = match controller.obs() {
        Some(obs) => (
            obs.registry().to_value(),
            obs.tracer().events().copied().collect(),
            obs.registry().clone(),
        ),
        None => (serde_json::Value::Null, Vec::new(), MetricRegistry::new()),
    };
    SchemeResult {
        scheme: controller.name(),
        array_accesses: controller.array_accesses(),
        traffic: *controller.traffic(),
        stats: *controller.stats(),
        metrics,
        events,
        registry,
        series,
    }
}

/// Runs one scheme of one benchmark over an already-generated trace —
/// the sweep engine's unit of parallel work.
pub fn run_scheme_on_trace(scheme: SchemeKind, trace: &Trace, config: RunConfig) -> SchemeResult {
    run_scheme(
        scheme.build(config.geometry).as_mut(),
        trace,
        config.warmup_ops,
    )
}

/// [`run_scheme_on_trace`] with series sampling: builds a ring-only
/// sampler labelled `bench`/scheme and returns the windows in
/// [`SchemeResult::series`]. Windows depend only on the trace and the
/// cadence, never on wall-clock or scheduling, so sweep series stay
/// byte-identical across `--jobs`.
pub fn run_scheme_on_trace_sampled(
    scheme: SchemeKind,
    trace: &Trace,
    config: RunConfig,
    bench: &str,
    sampler_config: SamplerConfig,
) -> SchemeResult {
    let mut sampler = Sampler::new(bench, scheme.name(), sampler_config);
    run_scheme_sampled(
        scheme.build(config.geometry).as_mut(),
        trace,
        config.warmup_ops,
        &mut sampler,
    )
}

/// Measures the Figure-3/4/5 stream statistics of the measured region —
/// the sweep engine's fifth per-benchmark unit of work.
pub fn measure_stream(trace: &Trace, config: RunConfig) -> StreamStats {
    let _span = span!("bench.stream_stats");
    let (ops, instructions) = trace.measured_region(config.warmup_ops);
    StreamStats::measure_ops(ops, instructions, config.geometry)
}

/// [`measure_stream`] over a [`ChunkSource`]: folds the measured region
/// chunk-by-chunk through the incremental accumulator, then normalizes
/// by the same `warmup_split` pro-rating the materialized path uses —
/// so the result is bit-identical to measuring the assembled trace.
pub fn measure_stream_streamed<S: ChunkSource>(mut chunks: S, config: RunConfig) -> StreamStats {
    let _span = span!("bench.stream_stats");
    let mut acc = StreamStatsAccumulator::new(config.geometry);
    let warmup = config.warmup_ops as u64;
    let mut total_ops = 0u64;
    let mut total_instructions = 0u64;
    while let Some(chunk) = chunks.next_chunk() {
        total_instructions += chunk.instructions();
        let start = total_ops;
        let ops = chunk.ops();
        total_ops += ops.len() as u64;
        if total_ops <= warmup {
            continue; // entirely inside the warm-up region
        }
        let skip = warmup.saturating_sub(start) as usize;
        acc.feed(&ops[skip..]);
    }
    let split = warmup_split(total_ops as usize, total_instructions, config.warmup_ops);
    acc.finish(split.measured_instructions)
}

/// Runs one scheme over a chunk stream — the sweep engine's streamed
/// unit of parallel work, mirroring [`run_scheme_on_trace`].
pub fn run_scheme_on_stream<S: ChunkSource>(
    scheme: SchemeKind,
    chunks: S,
    config: RunConfig,
) -> SchemeResult {
    run_scheme_streamed(
        scheme.build(config.geometry).as_mut(),
        chunks,
        config.warmup_ops,
    )
}

/// [`run_scheme_on_stream`] with series sampling, mirroring
/// [`run_scheme_on_trace_sampled`].
pub fn run_scheme_on_stream_sampled<S: ChunkSource>(
    scheme: SchemeKind,
    chunks: S,
    config: RunConfig,
    bench: &str,
    sampler_config: SamplerConfig,
) -> SchemeResult {
    let mut sampler = Sampler::new(bench, scheme.name(), sampler_config);
    run_scheme_streamed_sampled(
        scheme.build(config.geometry).as_mut(),
        chunks,
        config.warmup_ops,
        &mut sampler,
    )
}

/// Generates the benchmark's trace exactly as the experiment runner
/// does: shaped at the paper's *reference* geometry and replayed
/// unchanged against every cache configuration — the paper's own
/// methodology (one Pin trace, many cache models). This is what lets
/// the Figure 10/11 sensitivity effects emerge from spatial locality
/// rather than being re-generated away.
pub fn generate_trace(profile: &WorkloadProfile, config: RunConfig) -> Trace {
    let _span = span!("bench.generate");
    let mut generator = ProfiledGenerator::new(
        profile.clone(),
        CacheGeometry::paper_baseline(),
        config.seed,
    );
    generator.collect(config.total_ops())
}

/// Runs one benchmark profile through all four controllers over an
/// identical, pre-generated trace.
pub fn run_benchmark_on_trace(
    profile: &WorkloadProfile,
    config: RunConfig,
    trace: &Trace,
) -> BenchmarkResult {
    let stream = measure_stream(trace, config);
    let [conventional, rmw, wg, wgrb] =
        SchemeKind::ALL.map(|scheme| run_scheme_on_trace(scheme, trace, config));
    BenchmarkResult {
        name: profile.name.clone(),
        stream,
        conventional,
        rmw,
        wg,
        wgrb,
    }
}

/// Runs one benchmark profile through all four controllers over an
/// identical trace.
pub fn run_benchmark(profile: &WorkloadProfile, config: RunConfig) -> BenchmarkResult {
    let trace = generate_trace(profile, config);
    run_benchmark_on_trace(profile, config, &trace)
}

/// Runs the full 25-benchmark suite serially. The sweep engine
/// (`crate::sweep`) produces identical results in parallel.
pub fn run_suite(config: RunConfig) -> Vec<BenchmarkResult> {
    profiles::spec2006()
        .iter()
        .map(|p| run_benchmark(p, config))
        .collect()
}

/// Arithmetic mean of a per-benchmark metric.
pub fn average<F: Fn(&BenchmarkResult) -> f64>(results: &[BenchmarkResult], f: F) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(f).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache8t_trace::ChunkedGenerator;

    fn small_config() -> RunConfig {
        RunConfig::new(CacheGeometry::paper_baseline(), 20_000, 7)
    }

    #[test]
    fn scheme_kinds_build_their_controllers() {
        for kind in SchemeKind::ALL {
            let controller = kind.build(CacheGeometry::paper_baseline());
            assert_eq!(controller.name(), kind.name());
        }
    }

    #[test]
    fn per_unit_runs_assemble_into_the_serial_result() {
        // The engine's unit jobs must reproduce run_benchmark exactly.
        let p = profiles::by_name("gcc").unwrap();
        let config = small_config();
        let serial = run_benchmark(&p, config);
        let trace = generate_trace(&p, config);
        let assembled = run_benchmark_on_trace(&p, config, &trace);
        assert_eq!(serial.rmw.array_accesses, assembled.rmw.array_accesses);
        assert_eq!(serial.wgrb.array_accesses, assembled.wgrb.array_accesses);
        assert_eq!(serial.conventional.stats, assembled.conventional.stats);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&assembled).unwrap()
        );
    }

    #[test]
    fn sampling_does_not_perturb_the_measurement() {
        // A sampled run must report byte-identical results to the plain
        // runner — telemetry observes the replay, it never changes it.
        let p = profiles::by_name("gcc").unwrap();
        let config = small_config();
        let trace = generate_trace(&p, config);
        let plain = run_scheme_on_trace(SchemeKind::Wg, &trace, config);
        let sampled = run_scheme_on_trace_sampled(
            SchemeKind::Wg,
            &trace,
            config,
            "gcc",
            SamplerConfig {
                cadence: 1_024,
                ring_capacity: 64,
            },
        );
        assert_eq!(plain.stats, sampled.stats);
        assert_eq!(plain.array_accesses, sampled.array_accesses);
        assert_eq!(
            serde_json::to_string(&plain.metrics).unwrap(),
            serde_json::to_string(&sampled.metrics).unwrap()
        );
        assert!(!sampled.series.is_empty());
        assert!(plain.series.is_empty());
        // Serialized scheme results are unchanged by sampling: the
        // series rides along outside the document schema.
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&sampled).unwrap()
        );
    }

    fn chunks_for(
        p: &WorkloadProfile,
        config: RunConfig,
        chunk_ops: usize,
    ) -> ChunkedGenerator<ProfiledGenerator> {
        let generator =
            ProfiledGenerator::new(p.clone(), CacheGeometry::paper_baseline(), config.seed);
        ChunkedGenerator::new(generator, chunk_ops, config.total_ops() as u64)
    }

    #[test]
    fn streamed_replay_is_bit_identical_to_materialized() {
        // The tentpole invariant: a chunked replay — at any chunk size,
        // including seams inside the warm-up region — serializes to the
        // exact bytes of the materialized replay, for every scheme.
        let p = profiles::by_name("gcc").unwrap();
        let config = small_config();
        let trace = generate_trace(&p, config);
        for chunk_ops in [999usize, 4_096, 22_000, 50_000] {
            for scheme in SchemeKind::ALL {
                let materialized = run_scheme_on_trace(scheme, &trace, config);
                let streamed =
                    run_scheme_on_stream(scheme, chunks_for(&p, config, chunk_ops), config);
                assert_eq!(
                    serde_json::to_string(&materialized).unwrap(),
                    serde_json::to_string(&streamed).unwrap(),
                    "scheme={} chunk_ops={chunk_ops}",
                    scheme.name()
                );
            }
            let materialized = measure_stream(&trace, config);
            let streamed = measure_stream_streamed(chunks_for(&p, config, chunk_ops), config);
            assert_eq!(
                serde_json::to_string(&materialized).unwrap(),
                serde_json::to_string(&streamed).unwrap(),
                "stream stats, chunk_ops={chunk_ops}"
            );
        }
    }

    #[test]
    fn streamed_sampled_series_is_byte_identical_to_materialized() {
        // Chunk seams fall mid-window (cadence 1024, chunk 1000): the
        // streamed sampler must emit the same windows and the same JSONL
        // bytes as the materialized sampled replay.
        use std::sync::{Arc as StdArc, Mutex};

        #[derive(Clone)]
        struct SharedBuf(StdArc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let p = profiles::by_name("mcf").unwrap();
        let config = small_config();
        let trace = generate_trace(&p, config);
        let sampler_config = SamplerConfig {
            cadence: 1_024,
            ring_capacity: 64,
        };

        let run = |replay: &dyn Fn(&mut dyn Controller, &mut Sampler) -> SchemeResult| {
            let buf = SharedBuf(StdArc::new(Mutex::new(Vec::new())));
            let mut sampler = Sampler::new("mcf", SchemeKind::WgRb.name(), sampler_config)
                .with_writer(Box::new(buf.clone()));
            let mut controller = SchemeKind::WgRb.build(config.geometry);
            let result = replay(controller.as_mut(), &mut sampler);
            let bytes = buf.0.lock().unwrap().clone();
            (result, bytes)
        };

        let (materialized, mat_bytes) =
            run(&|c, s| run_scheme_sampled(c, &trace, config.warmup_ops, s));
        for chunk_ops in [1_000usize, 4_096] {
            let (streamed, stream_bytes) = run(&|c, s| {
                run_scheme_streamed_sampled(
                    c,
                    chunks_for(&p, config, chunk_ops),
                    config.warmup_ops,
                    s,
                )
            });
            assert_eq!(
                mat_bytes, stream_bytes,
                "JSONL bytes, chunk_ops={chunk_ops}"
            );
            assert_eq!(
                materialized.series, streamed.series,
                "ring series, chunk_ops={chunk_ops}"
            );
            assert_eq!(materialized.stats, streamed.stats);
        }
    }

    #[test]
    fn streamed_warmup_reset_handles_every_seam_case() {
        // The reset must fire exactly before the op at index warmup_ops:
        // at a chunk seam, mid-chunk, with no warm-up at all, and with a
        // warm-up longer than the stream (never fires).
        let p = profiles::by_name("gcc").unwrap();
        let base = small_config();
        let trace = generate_trace(&p, base);
        for warmup_ops in [0usize, 1_000, 1_001, 2_000, 21_999, 22_000, 50_000] {
            let config = RunConfig { warmup_ops, ..base };
            let materialized = run_scheme_on_trace(SchemeKind::Wg, &trace, config);
            let streamed =
                run_scheme_on_stream(SchemeKind::Wg, chunks_for(&p, base, 1_000), config);
            assert_eq!(
                serde_json::to_string(&materialized).unwrap(),
                serde_json::to_string(&streamed).unwrap(),
                "warmup_ops={warmup_ops}"
            );
        }
    }

    #[test]
    fn prefetched_streamed_replay_matches_direct_streaming() {
        // Double-buffered prefetch is pure plumbing: same chunks, same
        // result, even though generation happens on another thread.
        let p = profiles::by_name("gcc").unwrap();
        let config = small_config();
        let direct = run_scheme_on_stream(SchemeKind::Rmw, chunks_for(&p, config, 2_048), config);
        let prefetched = run_scheme_on_stream(
            SchemeKind::Rmw,
            crate::stream::PrefetchedChunks::spawn(chunks_for(&p, config, 2_048)),
            config,
        );
        assert_eq!(
            serde_json::to_string(&direct).unwrap(),
            serde_json::to_string(&prefetched).unwrap()
        );
    }

    #[test]
    fn long_sampled_replays_hold_a_bounded_ring() {
        // Memory for an arbitrarily long replay is O(ring), not O(ops):
        // far more windows are emitted than retained.
        let p = profiles::by_name("mcf").unwrap();
        let config = RunConfig::new(CacheGeometry::paper_baseline(), 200_000, 7);
        let trace = generate_trace(&p, config);
        let sampler_config = SamplerConfig {
            cadence: 64,
            ring_capacity: 32,
        };
        let mut sampler = Sampler::new("mcf", "WG", sampler_config);
        let mut controller = SchemeKind::Wg.build(config.geometry);
        let result =
            run_scheme_sampled(controller.as_mut(), &trace, config.warmup_ops, &mut sampler);
        let windows = config.total_ops() as u64 / 64;
        assert!(sampler.emitted() >= windows, "{}", sampler.emitted());
        assert_eq!(result.series.len(), 32, "ring must stay at capacity");
        // The retained tail is the most recent windows, in order.
        let last = result.series.last().unwrap();
        assert_eq!(last.op_end, config.total_ops() as u64);
    }
}
