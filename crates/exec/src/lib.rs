//! Parallel sweep-execution engine for the cache8t workspace.
//!
//! Three layers, each usable on its own:
//!
//! * [`pool`] — a std-only work-stealing job scheduler
//!   ([`run_jobs`]) with per-job panic isolation
//!   ([`JobOutcome::Failed`] instead of an aborted batch) and bounded
//!   retry.
//! * [`store`] — a generate-once [`TraceStore`]: every job that needs
//!   the trace of a (profile, seed, ops) point shares one in-memory
//!   `Arc<Trace>`, optionally backed by the C8TT on-disk format under
//!   `results/traces/` so repeated invocations skip generation
//!   entirely.
//! * [`sweep`] — declarative [`SweepPlan`]s (workloads × geometries ×
//!   schemes) executed as fine-grained unit jobs and merged back in
//!   plan order, so the serialized sweep document is byte-identical
//!   for every `--jobs` value; [`merge_documents`] reassembles
//!   `--shard i/n` outputs into the unsharded document.
//!
//! The per-benchmark experiment runner itself lives in [`experiment`]
//! (moved here from `cache8t-bench`, which re-exports it): the figure
//! binaries and the sweep engine drive the exact same measurement code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod pool;
pub mod store;
pub mod stream;
pub mod sweep;

pub use experiment::{
    average, replay_ops_batched, run_benchmark, run_benchmark_on_trace, run_scheme_on_stream,
    run_scheme_on_stream_sampled, run_scheme_on_trace, run_scheme_on_trace_sampled, run_suite,
    BenchmarkResult, RunConfig, SchemeKind, SchemeResult,
};
pub use pool::{
    run_jobs, run_jobs_cancellable, CancelToken, ExecOptions, ExecReport, JobOutcome, JobProgress,
    WorkerSample, WorkerStats,
};
pub use store::{
    StoreStats, StreamCursor, TraceStore, TraceStream, DEFAULT_STORE_DIR, SHARED_WINDOW_CHUNKS,
    STORE_ENV_VAR,
};
pub use stream::{ChunkSource, PrefetchedChunks};
pub use sweep::{
    document_with_benchmarks, merge_documents, metrics_document, run_suites, run_sweep,
    to_document, BenchmarkEvent, BenchmarkHook, GeometryPoint, GeometrySweep, ProgressHook, Shard,
    SweepFailure, SweepOptions, SweepOutcome, SweepPlan,
};
