//! Declarative sweep plans and their parallel execution.
//!
//! A [`SweepPlan`] is the cross product of workloads × geometries ×
//! schemes at one (ops, seed) point. [`run_sweep`] expands it into
//! fine-grained unit jobs — one per (geometry, benchmark, scheme) plus
//! one stream-statistics unit per (geometry, benchmark) — and executes
//! them on the work-stealing pool over a shared, generate-once
//! [`TraceStore`].
//!
//! ## Determinism guarantee
//!
//! Every unit job is a pure function of the plan (generators are
//! seeded, controllers are deterministic), and the merge layer
//! reassembles outcomes by *plan position*, never by completion order.
//! The serialized sweep document is therefore byte-identical for any
//! `--jobs` value and any schedule; the scheduler only decides *when*
//! work happens, never *what* the answer is. Scheduler telemetry that
//! does vary (wall-clock, steal counts, cache-hit split) is kept in the
//! separate [`SweepOutcome::metrics`] registry, which deliberately
//! never enters the document.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde_json::Value;

use cache8t_obs::{MetricRegistry, SamplerConfig, SeriesSample, SpanStat, TimelineSpan};
use cache8t_sim::CacheGeometry;
use cache8t_trace::analyze::StreamStats;
use cache8t_trace::{profiles, WorkloadProfile};

use crate::experiment::{
    measure_stream, measure_stream_streamed, run_scheme_on_stream, run_scheme_on_stream_sampled,
    run_scheme_on_trace, run_scheme_on_trace_sampled, BenchmarkResult, RunConfig, SchemeKind,
    SchemeResult,
};
use crate::pool::{run_jobs_cancellable, CancelToken, ExecOptions, JobOutcome, JobProgress};
use crate::store::TraceStore;
use crate::stream::PrefetchedChunks;

/// One cache configuration of a sweep, with a stable display label.
#[derive(Debug, Clone)]
pub struct GeometryPoint {
    /// Short stable label (`"baseline"`, `"blocks64"`, ...).
    pub label: String,
    /// The cache geometry simulated at this point.
    pub geometry: CacheGeometry,
}

impl GeometryPoint {
    /// A labelled geometry point.
    pub fn new(label: impl Into<String>, geometry: CacheGeometry) -> Self {
        GeometryPoint {
            label: label.into(),
            geometry,
        }
    }

    /// The four named paper configurations, in report-card order:
    /// `baseline` (64 KB/4w/32 B), `blocks64` (32 KB/4w/64 B),
    /// `small` (32 KB/4w/32 B), `large` (128 KB/4w/32 B).
    pub fn named(label: &str) -> Option<GeometryPoint> {
        let geometry = match label {
            "baseline" => CacheGeometry::paper_baseline(),
            "blocks64" => CacheGeometry::paper_large_blocks(),
            "small" => CacheGeometry::paper_small(),
            "large" => CacheGeometry::paper_large(),
            _ => return None,
        };
        Some(GeometryPoint::new(label, geometry))
    }
}

/// The declarative input of a sweep: workloads × geometries × schemes
/// at one (ops, seed) point.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Workload profiles, in output order.
    pub profiles: Vec<WorkloadProfile>,
    /// Cache configurations, in output order.
    pub geometries: Vec<GeometryPoint>,
    /// Measured operations per benchmark (warm-up is the standard 10 %).
    pub ops: usize,
    /// Generator seed.
    pub seed: u64,
}

impl SweepPlan {
    /// The full 25-benchmark SPEC-like suite over `geometries`.
    pub fn suite(geometries: Vec<GeometryPoint>, ops: usize, seed: u64) -> Self {
        SweepPlan {
            profiles: profiles::spec2006(),
            geometries,
            ops,
            seed,
        }
    }

    /// The run configuration at geometry index `g`.
    pub fn config(&self, g: usize) -> RunConfig {
        RunConfig::new(self.geometries[g].geometry, self.ops, self.seed)
    }

    /// Benchmarks in the full plan (geometries × profiles).
    pub fn benchmark_count(&self) -> usize {
        self.geometries.len() * self.profiles.len()
    }
}

/// A `--shard i/n` selection: this process runs benchmark slots
/// `index, index + count, ...` of the plan's flattened
/// (geometry, profile) grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Zero-based shard index.
    pub index: usize,
    /// Total shards.
    pub count: usize,
}

impl Shard {
    /// Parses the CLI form `i/n` with 1-based `i`.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed specs, `n == 0`, or `i` outside
    /// `1..=n`.
    pub fn parse(spec: &str) -> Result<Shard, String> {
        let (i, n) = spec
            .split_once('/')
            .ok_or_else(|| format!("--shard expects i/n, got `{spec}`"))?;
        let index: usize = i
            .parse()
            .map_err(|_| format!("invalid shard index `{i}`"))?;
        let count: usize = n
            .parse()
            .map_err(|_| format!("invalid shard count `{n}`"))?;
        if count == 0 || index == 0 || index > count {
            return Err(format!("shard `{spec}` out of range (need 1 <= i <= n)"));
        }
        Ok(Shard {
            index: index - 1,
            count,
        })
    }

    fn selects(&self, slot: usize) -> bool {
        slot % self.count == self.index
    }
}

/// A benchmark-completion event, fired live from whichever worker
/// thread finishes a benchmark's last unit job.
#[derive(Debug)]
pub struct BenchmarkEvent<'a> {
    /// Geometry index in the plan.
    pub geometry: usize,
    /// Profile (benchmark) index in the plan.
    pub benchmark: usize,
    /// Flattened benchmark slot: `geometry * n_profiles + benchmark` —
    /// the same numbering `--shard` and [`SweepOptions::slots`] use.
    pub slot: usize,
    /// Benchmarks finished so far in this sweep, this one included —
    /// completion order, so consumers (checkpoint logs, dashboards)
    /// get `completed/total` progress without tracking it themselves.
    pub completed: usize,
    /// Benchmarks this sweep will run in total (after shard/slot
    /// selection).
    pub total: usize,
    /// The assembled result.
    pub result: &'a BenchmarkResult,
}

/// Signature of a live benchmark-completion observer.
pub type BenchmarkHookFn = dyn Fn(BenchmarkEvent<'_>) + Send + Sync;

/// A shareable [`BenchmarkHookFn`], newtyped so [`SweepOptions`] can
/// keep deriving `Debug`/`Clone`.
///
/// The hook runs on worker threads, once per benchmark, as soon as the
/// benchmark's fifth unit job lands (completion order, *not* plan
/// order). It is the checkpoint-journal attachment point: persisting
/// each event makes every completed benchmark durable the moment it
/// finishes, independent of whether the sweep itself survives.
#[derive(Clone)]
pub struct BenchmarkHook(pub Arc<BenchmarkHookFn>);

impl BenchmarkHook {
    /// Wraps a closure as a hook.
    pub fn new(hook: impl Fn(BenchmarkEvent<'_>) + Send + Sync + 'static) -> Self {
        BenchmarkHook(Arc::new(hook))
    }
}

impl fmt::Debug for BenchmarkHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BenchmarkHook(..)")
    }
}

/// A shareable [`JobProgress`] observer, for callers that want the
/// pool's live progress as data (the serve daemon ships it over the
/// wire) instead of — or in addition to — the stderr progress line.
/// Runs on worker threads after every finished unit job.
#[derive(Clone)]
pub struct ProgressHook(pub Arc<dyn Fn(JobProgress) + Send + Sync>);

impl ProgressHook {
    /// Wraps a closure as a hook.
    pub fn new(hook: impl Fn(JobProgress) + Send + Sync + 'static) -> Self {
        ProgressHook(Arc::new(hook))
    }
}

impl fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// How a sweep should be executed.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Scheduler configuration (worker count, retry budget).
    pub exec: ExecOptions,
    /// Restrict to one shard of the benchmark grid.
    pub shard: Option<Shard>,
    /// Restrict to an explicit set of benchmark slots (flattened
    /// `geometry * n_profiles + benchmark` indices). Takes precedence
    /// over `shard`; the resume path uses this to re-run exactly the
    /// benchmarks a checkpoint journal is missing.
    pub slots: Option<Vec<usize>>,
    /// Emit a live progress line on stderr while running.
    pub progress: bool,
    /// The trace store jobs draw from.
    pub store: Arc<TraceStore>,
    /// Attach a continuous-telemetry sampler to every scheme unit.
    /// The recorded windows land in each [`SchemeResult`]'s `series`
    /// and are retrievable in plan order via [`SweepOutcome::series`];
    /// they depend only on the trace and cadence, never on schedule, so
    /// the resulting JSONL is byte-identical for any `--jobs`.
    pub series: Option<SamplerConfig>,
    /// Cooperative cancellation: once the token fires, queued unit jobs
    /// drain without executing and the sweep returns with the finished
    /// prefix (see [`SweepOutcome::cancelled`]).
    pub cancel: Option<CancelToken>,
    /// Live per-benchmark completion observer (see [`BenchmarkHook`]).
    pub on_benchmark: Option<BenchmarkHook>,
    /// Live per-unit-job progress observer (see [`ProgressHook`]).
    pub on_progress: Option<ProgressHook>,
    /// Replay traces as bounded-memory chunk streams of this many ops
    /// instead of materializing them (see [`TraceStore::stream`]). The
    /// sweep document is byte-identical either way — streaming changes
    /// the memory footprint, never the answer — so large-`ops` sweeps
    /// can run with RSS bounded by the chunk size.
    pub stream_chunk_ops: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            exec: ExecOptions::default(),
            shard: None,
            slots: None,
            progress: false,
            store: Arc::new(TraceStore::in_memory()),
            series: None,
            cancel: None,
            on_benchmark: None,
            on_progress: None,
            stream_chunk_ops: None,
        }
    }
}

/// One benchmark whose jobs did not all complete.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    /// Geometry label of the failed benchmark.
    pub geometry: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Which unit failed (`"stream"` or a scheme name).
    pub unit: String,
    /// The panic payload, stringified.
    pub message: String,
    /// Attempts made before giving up.
    pub attempts: u32,
}

/// One geometry's slice of a sweep outcome.
#[derive(Debug)]
pub struct GeometrySweep {
    /// The geometry point this slice belongs to.
    pub point: GeometryPoint,
    /// One slot per plan profile: `None` when outside this shard or
    /// when any of the benchmark's unit jobs failed.
    pub results: Vec<Option<BenchmarkResult>>,
}

/// Everything a sweep run produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-geometry results, in plan order.
    pub geometries: Vec<GeometrySweep>,
    /// Benchmarks lost to job failures (panics), with their payloads.
    pub failures: Vec<SweepFailure>,
    /// Unit jobs drained without executing after the cancel token fired
    /// (0 for an uncancelled run).
    pub cancelled: usize,
    /// The `sweep.*` metric family: job/steal/retry/park counts,
    /// trace-store hit split, per-job duration and queue-depth
    /// histograms, per-worker busy fractions, worker count, wall-clock.
    /// Never part of the sweep document (it varies with schedule and
    /// machine).
    pub metrics: MetricRegistry,
    /// Span-profiler stats merged across every worker thread (workers'
    /// thread-local profilers die with their threads; the pool hands
    /// their reports here).
    pub spans: Vec<SpanStat>,
    /// Wall-clock of the scheduled region.
    pub elapsed: Duration,
}

impl SweepOutcome {
    /// All telemetry windows recorded by a sampled sweep (see
    /// [`SweepOptions::series`]), in deterministic plan order:
    /// geometry-major, then benchmark, then scheme, then window.
    /// Empty when the sweep ran unsampled.
    pub fn series(&self) -> impl Iterator<Item = &SeriesSample> {
        self.geometries
            .iter()
            .flat_map(|g| g.results.iter().flatten())
            .flat_map(|r| r.schemes())
            .flat_map(|s| s.series.iter())
    }

    /// All benchmark results, expecting a complete, failure-free run
    /// (no shard): one `Vec<BenchmarkResult>` per plan geometry.
    ///
    /// # Errors
    ///
    /// Describes the missing/failed benchmarks otherwise.
    pub fn into_complete(self) -> Result<Vec<Vec<BenchmarkResult>>, String> {
        if !self.failures.is_empty() {
            let mut msg = String::from("sweep jobs failed:");
            for f in &self.failures {
                msg.push_str(&format!(
                    "\n  {}/{} [{}]: {} ({} attempts)",
                    f.geometry, f.benchmark, f.unit, f.message, f.attempts
                ));
            }
            return Err(msg);
        }
        self.geometries
            .into_iter()
            .map(|g| {
                let label = g.point.label;
                g.results
                    .into_iter()
                    .enumerate()
                    .map(|(i, r)| {
                        r.ok_or_else(|| {
                            format!("geometry {label}: benchmark #{i} not run (sharded sweep?)")
                        })
                    })
                    .collect()
            })
            .collect()
    }
}

/// The unit jobs of one benchmark: its stream statistics and the four
/// controller schemes.
const UNITS_PER_BENCHMARK: usize = 1 + SchemeKind::ALL.len();

#[derive(Debug, Clone, Copy)]
enum Unit {
    Stream,
    Scheme(SchemeKind),
}

impl Unit {
    fn of(index: usize) -> Unit {
        match index {
            0 => Unit::Stream,
            i => Unit::Scheme(SchemeKind::ALL[i - 1]),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Unit::Stream => "stream",
            Unit::Scheme(kind) => kind.name(),
        }
    }
}

#[derive(Debug)]
enum UnitResult {
    Stream(StreamStats),
    Scheme(Box<SchemeResult>),
}

/// Per-benchmark staging area for the live completion hook: unit jobs
/// clone their result in as they finish, and the insert that completes
/// the set hands the pieces back so the inserting worker can assemble
/// the `BenchmarkResult` and fire the hook exactly once.
#[derive(Default)]
struct BenchAccum {
    stream: Option<StreamStats>,
    /// One slot per scheme, in [`SchemeKind::ALL`] order.
    schemes: Vec<Option<SchemeResult>>,
    fired: bool,
}

impl BenchAccum {
    /// Stages `result`; returns the full set when this insert completed
    /// it. First write wins per slot, so a retried unit job that
    /// partially ran before panicking cannot double-insert.
    fn insert(&mut self, result: &UnitResult) -> Option<BenchAccum> {
        if self.schemes.is_empty() {
            self.schemes = (0..SchemeKind::ALL.len()).map(|_| None).collect();
        }
        match result {
            UnitResult::Stream(stats) => {
                self.stream.get_or_insert(*stats);
            }
            UnitResult::Scheme(result) => {
                let index = SchemeKind::ALL
                    .iter()
                    .position(|k| k.name() == result.scheme)
                    .expect("scheme result names a known kind");
                self.schemes[index].get_or_insert_with(|| (**result).clone());
            }
        }
        let complete = self.stream.is_some() && self.schemes.iter().all(Option::is_some);
        if !complete || self.fired {
            return None;
        }
        let taken = std::mem::take(self);
        self.fired = true; // survives the take: the hook fires once
        Some(taken)
    }
}

/// Executes `plan` on the work-stealing pool and reassembles the
/// outcomes deterministically (see the module docs for the guarantee).
pub fn run_sweep(plan: &SweepPlan, options: &SweepOptions) -> SweepOutcome {
    let started = Instant::now();
    let n_profiles = plan.profiles.len();

    // Expand the plan: selection is per *benchmark* (never per unit),
    // so a shard or slot set always holds complete benchmarks and
    // partial outputs merge by simple union. An explicit slot set
    // (resume: "exactly the benchmarks the journal is missing") takes
    // precedence over modular sharding.
    let selected = |slot: usize| match &options.slots {
        Some(slots) => slots.contains(&slot),
        None => options.shard.is_none_or(|s| s.selects(slot)),
    };
    let mut specs: Vec<(usize, usize, Unit)> = Vec::new();
    for g in 0..plan.geometries.len() {
        for b in 0..n_profiles {
            let slot = g * n_profiles + b;
            if selected(slot) {
                for u in 0..UNITS_PER_BENCHMARK {
                    specs.push((g, b, Unit::of(u)));
                }
            }
        }
    }

    // Live per-benchmark assembly for the completion hook: the five
    // unit jobs of benchmark i occupy specs[i*5 .. i*5+5], so spec
    // index / 5 addresses the benchmark's accumulator. Jobs clone
    // their result in; whichever worker lands the fifth piece fires
    // the hook. Only paid when a hook is installed.
    let accumulators: Vec<Mutex<BenchAccum>> = if options.on_benchmark.is_some() {
        (0..specs.len() / UNITS_PER_BENCHMARK)
            .map(|_| Mutex::new(BenchAccum::default()))
            .collect()
    } else {
        Vec::new()
    };

    let store = &options.store;
    let series = options.series;
    let stream_chunk_ops = options.stream_chunk_ops;
    let hook = options.on_benchmark.as_ref();
    let accumulators = &accumulators;
    let completed_benchmarks = std::sync::atomic::AtomicUsize::new(0);
    let completed_benchmarks = &completed_benchmarks;
    let jobs: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(spec_index, &(g, b, unit))| {
            let store = Arc::clone(store);
            move || {
                let profile = &plan.profiles[b];
                let _slice = TimelineSpan::enter_lazy(
                    || {
                        format!(
                            "{}/{}/{}",
                            plan.geometries[g].label,
                            profile.name,
                            unit.name()
                        )
                    },
                    "job",
                );
                let config = plan.config(g);
                let result = if let Some(chunk_ops) = stream_chunk_ops {
                    // Streamed unit: never materialize the trace. Each
                    // unit takes its own cursor (deduplicated through
                    // the stream's shared frontier) behind a
                    // double-buffered prefetcher, so at most two chunks
                    // per unit are resident.
                    let stream = store.stream(profile, plan.seed, config.total_ops(), chunk_ops);
                    let chunks = PrefetchedChunks::spawn(stream.cursor());
                    match unit {
                        Unit::Stream => UnitResult::Stream(measure_stream_streamed(chunks, config)),
                        Unit::Scheme(kind) => UnitResult::Scheme(Box::new(match series {
                            Some(sampler_config) => {
                                let bench =
                                    format!("{}/{}", plan.geometries[g].label, profile.name);
                                run_scheme_on_stream_sampled(
                                    kind,
                                    chunks,
                                    config,
                                    &bench,
                                    sampler_config,
                                )
                            }
                            None => run_scheme_on_stream(kind, chunks, config),
                        })),
                    }
                } else {
                    let trace = store.get(profile, plan.seed, config.total_ops());
                    match unit {
                        Unit::Stream => UnitResult::Stream(measure_stream(&trace, config)),
                        Unit::Scheme(kind) => UnitResult::Scheme(Box::new(match series {
                            Some(sampler_config) => {
                                let bench =
                                    format!("{}/{}", plan.geometries[g].label, profile.name);
                                run_scheme_on_trace_sampled(
                                    kind,
                                    &trace,
                                    config,
                                    &bench,
                                    sampler_config,
                                )
                            }
                            None => run_scheme_on_trace(kind, &trace, config),
                        })),
                    }
                };
                if let Some(hook) = hook {
                    let accum = &accumulators[spec_index / UNITS_PER_BENCHMARK];
                    let assembled = accum
                        .lock()
                        .expect("benchmark accumulator poisoned")
                        .insert(&result);
                    if let Some(mut schemes) = assembled {
                        let stream = schemes.stream.take().expect("stream present");
                        let mut take =
                            |i: usize| schemes.schemes[i].take().expect("scheme present");
                        let assembled = BenchmarkResult {
                            name: profile.name.clone(),
                            stream,
                            conventional: take(0),
                            rmw: take(1),
                            wg: take(2),
                            wgrb: take(3),
                        };
                        let completed = completed_benchmarks
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                            + 1;
                        hook.0(BenchmarkEvent {
                            geometry: g,
                            benchmark: b,
                            slot: g * n_profiles + b,
                            completed,
                            total: accumulators.len(),
                            result: &assembled,
                        });
                    }
                }
                result
            }
        })
        .collect();

    let progress = options.progress.then(|| {
        cache8t_obs::progress::ProgressLine::new(
            "sweep",
            jobs.len(),
            cache8t_obs::progress::ProgressMode::from_env(),
        )
    });
    // Live throughput for the progress line, from the *windowed*
    // recent-jobs mean rather than the all-time average: replayed ops
    // per microsecond across the workers is exactly Mops/s, and the
    // window makes the figure track the current benchmark mix.
    let ops_per_job = plan.config(0).total_ops() as f64;
    let observer = |p: JobProgress| {
        if let Some(line) = &progress {
            line.tick_rate(p.done, p.failed, p.eta(), p.mops(ops_per_job));
        }
        if let Some(hook) = &options.on_progress {
            hook.0(p);
        }
    };
    let report = run_jobs_cancellable(
        jobs,
        &options.exec,
        options.cancel.as_ref(),
        Some(&observer),
    );
    if let Some(line) = &progress {
        line.finish();
    }

    // Deterministic merge: outcomes land in spec order, and specs were
    // emitted in plan order.
    let mut geometries: Vec<GeometrySweep> = plan
        .geometries
        .iter()
        .map(|point| GeometrySweep {
            point: point.clone(),
            results: (0..n_profiles).map(|_| None).collect(),
        })
        .collect();
    let mut failures = Vec::new();
    let mut cancelled = 0usize;
    let mut pending: Option<(usize, usize, Vec<SchemeResult>, Option<StreamStats>)> = None;
    for (&(g, b, unit), outcome) in specs.iter().zip(report.outcomes) {
        let slot = match &mut pending {
            Some(p) if p.0 == g && p.1 == b => p,
            _ => {
                flush_benchmark(&mut geometries, plan, pending.take());
                pending = Some((g, b, Vec::new(), None));
                pending.as_mut().expect("just set")
            }
        };
        match outcome {
            JobOutcome::Completed(UnitResult::Stream(stats)) => slot.3 = Some(stats),
            JobOutcome::Completed(UnitResult::Scheme(result)) => slot.2.push(*result),
            JobOutcome::Failed { message, attempts } => failures.push(SweepFailure {
                geometry: plan.geometries[g].label.clone(),
                benchmark: plan.profiles[b].name.clone(),
                unit: unit.name().to_string(),
                message,
                attempts,
            }),
            // A drained unit leaves its benchmark incomplete; the
            // benchmark simply stays `None`, exactly like an
            // out-of-shard slot, and a resume re-runs it whole.
            JobOutcome::Cancelled => cancelled += 1,
        }
    }
    flush_benchmark(&mut geometries, plan, pending.take());

    let elapsed = started.elapsed();
    let mut metrics = MetricRegistry::new();
    let store_stats = options.store.stats();
    for (name, value) in [
        ("sweep.jobs", specs.len() as u64),
        ("sweep.jobs_failed", failures.len() as u64),
        ("sweep.jobs_cancelled", cancelled as u64),
        ("sweep.retries", report.retries),
        ("sweep.steals", report.steals),
        (
            "sweep.parks",
            report.worker_stats.iter().map(|w| w.parks).sum(),
        ),
        (
            "sweep.benchmarks",
            (specs.len() / UNITS_PER_BENCHMARK) as u64,
        ),
        ("sweep.trace.generated", store_stats.generated),
        ("sweep.trace.mem_hits", store_stats.mem_hits),
        ("sweep.trace.disk_hits", store_stats.disk_hits),
        ("sweep.trace.recovered", store_stats.recovered),
        (
            "sweep.trace.stream_chunks",
            store_stats.stream_chunks_generated,
        ),
        ("sweep.trace.stream_mem_hits", store_stats.stream_mem_hits),
        (
            "sweep.trace.stream_disk_chunks",
            store_stats.stream_disk_chunks,
        ),
        ("sweep.trace.stream_restarts", store_stats.stream_restarts),
    ] {
        let id = metrics.counter(name);
        metrics.add(id, value);
    }
    let workers = metrics.gauge("sweep.workers");
    metrics.set(workers, options.exec.effective_workers() as i64);
    let wall = metrics.gauge("sweep.elapsed_ms");
    metrics.set(wall, elapsed.as_millis() as i64);
    let job_us = metrics.histogram("sweep.job_us");
    metrics.merge_histogram(job_us, &report.job_durations_us);
    let depth = metrics.histogram("sweep.queue_depth");
    metrics.merge_histogram(depth, &report.queue_depths);
    for (i, stats) in report.worker_stats.iter().enumerate() {
        let busy = metrics.gauge(&format!("sweep.worker.{i}.busy_pct"));
        metrics.set(busy, stats.busy_pct().round() as i64);
        let jobs = metrics.counter(&format!("sweep.worker.{i}.jobs"));
        metrics.add(jobs, stats.jobs);
        let steals = metrics.counter(&format!("sweep.worker.{i}.steals"));
        metrics.add(steals, stats.steals);
    }
    // Per-worker throughput / queue-depth series, folded into the
    // scheduler-telemetry family (wall-clock quantities stay out of
    // deterministic documents; `perfdiff --ignore sweep.` skips them).
    for (i, samples) in report.worker_series.iter().enumerate() {
        let depth = metrics.histogram(&format!("sweep.worker.{i}.queue_depth"));
        let gap = metrics.histogram(&format!("sweep.worker.{i}.job_gap_ms"));
        let mut previous_ms = 0;
        for sample in samples {
            metrics.observe(depth, sample.queue_depth);
            metrics.observe(gap, sample.at_ms.saturating_sub(previous_ms));
            previous_ms = sample.at_ms;
        }
    }

    SweepOutcome {
        geometries,
        failures,
        cancelled,
        metrics,
        spans: report.spans,
        elapsed,
    }
}

/// Assembles one benchmark's five unit results into a
/// `BenchmarkResult`, dropping it (the failure is already recorded)
/// when any unit is missing.
fn flush_benchmark(
    geometries: &mut [GeometrySweep],
    plan: &SweepPlan,
    pending: Option<(usize, usize, Vec<SchemeResult>, Option<StreamStats>)>,
) {
    let Some((g, b, mut schemes, stream)) = pending else {
        return;
    };
    let (Some(stream), true) = (stream, schemes.len() == SchemeKind::ALL.len()) else {
        return;
    };
    let wgrb = schemes.pop().expect("four schemes");
    let wg = schemes.pop().expect("three schemes");
    let rmw = schemes.pop().expect("two schemes");
    let conventional = schemes.pop().expect("one scheme");
    geometries[g].results[b] = Some(BenchmarkResult {
        name: plan.profiles[b].name.clone(),
        stream,
        conventional,
        rmw,
        wg,
        wgrb,
    });
}

/// Convenience for the figure binaries: runs the full suite over
/// `geometries` on the engine and returns one result vector per
/// geometry, in order.
///
/// # Errors
///
/// Returns the failure summary when any unit job panicked through its
/// retry budget.
pub fn run_suites(
    geometries: Vec<GeometryPoint>,
    ops: usize,
    seed: u64,
    options: &SweepOptions,
) -> Result<Vec<Vec<BenchmarkResult>>, String> {
    let plan = SweepPlan::suite(geometries, ops, seed);
    run_sweep(&plan, options).into_complete()
}

/// Builds the `--metrics-out` document of `cache8t sweep`:
/// `{"schemes": {scheme: merged registry snapshot}, "sweep": {...}}`.
///
/// The `schemes` section merges every benchmark's per-scheme registry
/// across the whole sweep and is deterministic (same plan → same
/// numbers on any machine), so it can serve as a checked-in
/// `cache8t perfdiff` baseline; the `sweep` section is scheduler
/// telemetry and varies run to run (diff it with `--ignore sweep.`).
pub fn metrics_document(outcome: &SweepOutcome) -> Value {
    let mut schemes: Vec<(&'static str, MetricRegistry)> = Vec::new();
    for g in &outcome.geometries {
        for r in g.results.iter().flatten() {
            for s in r.schemes() {
                match schemes.iter_mut().find(|(name, _)| *name == s.scheme) {
                    Some((_, merged)) => merged.merge(&s.registry),
                    None => schemes.push((s.scheme, s.registry.clone())),
                }
            }
        }
    }
    Value::Object(vec![
        (
            "schemes".to_owned(),
            Value::Object(
                schemes
                    .into_iter()
                    .map(|(name, registry)| (name.to_owned(), registry.to_value()))
                    .collect(),
            ),
        ),
        ("sweep".to_owned(), outcome.metrics.to_value()),
    ])
}

/// Serializes the outcome as the canonical sweep document. Sharded runs
/// produce the same document restricted to their benchmarks; byte-level
/// identity across `--jobs` values (and across shard-merge) is a tested
/// invariant.
pub fn to_document(plan: &SweepPlan, outcome: &SweepOutcome) -> Value {
    let benchmarks: Vec<Vec<Value>> = outcome
        .geometries
        .iter()
        .map(|g| {
            g.results
                .iter()
                .flatten()
                .map(serde_json::to_value)
                .collect()
        })
        .collect();
    document_with_benchmarks(plan, &benchmarks)
}

/// The sweep-document skeleton around externally supplied benchmark
/// values: `benchmarks[g]` holds geometry `g`'s benchmark objects in
/// profile order (already filtered to the ones that ran).
///
/// [`to_document`] and the serve checkpoint-resume path both build
/// their documents through this one function, so a document assembled
/// from journalled benchmark values is byte-identical to the batch
/// path's as long as the values round-tripped losslessly (which the
/// vendored serializer guarantees and the service tests enforce).
pub fn document_with_benchmarks(plan: &SweepPlan, benchmarks: &[Vec<Value>]) -> Value {
    let profiles = plan
        .profiles
        .iter()
        .map(|p| Value::Str(p.name.clone()))
        .collect();
    let geometries = plan
        .geometries
        .iter()
        .zip(benchmarks)
        .map(|(point, benchmarks)| {
            Value::Object(vec![
                ("label".to_owned(), Value::Str(point.label.clone())),
                (
                    "cache_kb".to_owned(),
                    Value::U64(point.geometry.capacity_bytes() / 1024),
                ),
                ("ways".to_owned(), Value::U64(point.geometry.ways())),
                (
                    "block_bytes".to_owned(),
                    Value::U64(point.geometry.block_bytes()),
                ),
                ("benchmarks".to_owned(), Value::Array(benchmarks.clone())),
            ])
        })
        .collect();
    Value::Object(vec![
        ("ops".to_owned(), Value::U64(plan.ops as u64)),
        ("seed".to_owned(), Value::U64(plan.seed)),
        ("profiles".to_owned(), Value::Array(profiles)),
        ("geometries".to_owned(), Value::Array(geometries)),
    ])
}

/// Merges shard documents (the outputs of `--shard i/n` runs over the
/// *same* plan) into the document a single unsharded run would produce.
///
/// # Errors
///
/// Returns a message when the documents disagree on the plan header
/// (ops, seed, profiles, geometries) or are structurally malformed.
pub fn merge_documents(docs: &[Value]) -> Result<Value, String> {
    let first = docs.first().ok_or("nothing to merge")?;
    let header = |doc: &Value, key: &str| -> Result<Value, String> {
        doc.get(key)
            .cloned()
            .ok_or_else(|| format!("sweep document missing `{key}`"))
    };
    let ops = header(first, "ops")?;
    let seed = header(first, "seed")?;
    let profiles = header(first, "profiles")?;
    let profile_order: Vec<String> = profiles
        .as_array()
        .ok_or("`profiles` is not an array")?
        .iter()
        .map(|v| v.as_str().map(str::to_owned).ok_or("non-string profile"))
        .collect::<Result<_, _>>()?;

    let geometry_of = |doc: &Value| -> Result<Vec<Value>, String> {
        Ok(header(doc, "geometries")?
            .as_array()
            .ok_or("`geometries` is not an array")?
            .to_vec())
    };
    let first_geometries = geometry_of(first)?;

    // (geometry index, benchmark name) -> benchmark value, first wins.
    let mut collected: Vec<Vec<(String, Value)>> = vec![Vec::new(); first_geometries.len()];
    for doc in docs {
        for (key, reference) in [("ops", &ops), ("seed", &seed), ("profiles", &profiles)] {
            if &header(doc, key)? != reference {
                return Err(format!("sweep documents disagree on `{key}`"));
            }
        }
        let geometries = geometry_of(doc)?;
        if geometries.len() != first_geometries.len() {
            return Err("sweep documents disagree on geometry count".to_string());
        }
        for (gi, geometry) in geometries.iter().enumerate() {
            if geometry.get("label") != first_geometries[gi].get("label") {
                return Err("sweep documents disagree on geometry order".to_string());
            }
            let benchmarks = geometry
                .get("benchmarks")
                .and_then(Value::as_array)
                .ok_or("geometry missing `benchmarks`")?;
            for benchmark in benchmarks {
                let name = benchmark
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("benchmark missing `name`")?;
                if !collected[gi].iter().any(|(n, _)| n == name) {
                    collected[gi].push((name.to_owned(), benchmark.clone()));
                }
            }
        }
    }

    let geometries = first_geometries
        .into_iter()
        .zip(collected)
        .map(|(geometry, mut found)| {
            let ordered: Vec<Value> = profile_order
                .iter()
                .filter_map(|name| {
                    found
                        .iter()
                        .position(|(n, _)| n == name)
                        .map(|i| found.swap_remove(i).1)
                })
                .collect();
            let fields = geometry
                .as_object()
                .expect("validated above")
                .iter()
                .map(|(k, v)| {
                    if k == "benchmarks" {
                        (k.clone(), Value::Array(ordered.clone()))
                    } else {
                        (k.clone(), v.clone())
                    }
                })
                .collect();
            Value::Object(fields)
        })
        .collect();

    Ok(Value::Object(vec![
        ("ops".to_owned(), ops),
        ("seed".to_owned(), seed),
        ("profiles".to_owned(), profiles),
        ("geometries".to_owned(), Value::Array(geometries)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parsing() {
        assert_eq!(Shard::parse("1/2"), Ok(Shard { index: 0, count: 2 }));
        assert_eq!(Shard::parse("3/3"), Ok(Shard { index: 2, count: 3 }));
        for bad in ["", "3", "0/2", "3/2", "a/b", "1/0"] {
            assert!(Shard::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn shards_partition_the_grid() {
        let a = Shard { index: 0, count: 2 };
        let b = Shard { index: 1, count: 2 };
        for slot in 0..10 {
            assert_ne!(a.selects(slot), b.selects(slot));
        }
    }

    #[test]
    fn named_geometries_resolve() {
        for label in ["baseline", "blocks64", "small", "large"] {
            let point = GeometryPoint::named(label).expect(label);
            assert_eq!(point.label, label);
        }
        assert!(GeometryPoint::named("bogus").is_none());
    }
}
