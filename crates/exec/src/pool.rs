//! A std-only work-stealing job scheduler with per-job panic isolation.
//!
//! The pool runs a fixed batch of independent jobs across `workers`
//! threads. Each worker owns a deque seeded round-robin with job
//! indices; when its own deque drains it steals from the front of a
//! victim's deque, so long-running jobs never serialize the tail of a
//! batch behind one thread. Jobs are plain closures over shared state
//! (`Fn() -> T`), which keeps them re-runnable for bounded retry.
//!
//! Every job runs under [`std::panic::catch_unwind`]: a panicking job
//! becomes a structured [`JobOutcome::Failed`] carrying the panic
//! payload, and the remaining jobs keep running — a single poisoned
//! experiment cannot abort a sweep. Outcomes are returned in submission
//! order regardless of the schedule, which is what lets callers build
//! deterministic, thread-count-independent reports on top.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use cache8t_obs::{span, timeline, Log2Histogram, SpanStat};

/// A cooperative cancellation flag shared between a batch's submitter
/// and its workers.
///
/// Cancellation is polled *between* unit jobs: a job that is already
/// replaying runs to completion (jobs are seconds at most), every job
/// still queued is drained as [`JobOutcome::Cancelled`] without
/// executing, and the batch returns promptly with outcomes for every
/// submitted job. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// `true` once [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Worker threads; `0` means [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Extra attempts after a panic (0 = fail on the first panic).
    pub retries: u32,
}

impl ExecOptions {
    /// The configured worker count with `0` resolved to the machine's
    /// available parallelism (at least 1).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// How one job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome<T> {
    /// The job returned a value.
    Completed(T),
    /// Every attempt panicked; the sweep continued without this job.
    Failed {
        /// The panic payload of the last attempt, stringified.
        message: String,
        /// Total attempts made (1 + retries).
        attempts: u32,
    },
    /// The batch's [`CancelToken`] fired before this job started; it
    /// was drained without executing.
    Cancelled,
}

impl<T> JobOutcome<T> {
    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            JobOutcome::Completed(v) => Some(v),
            JobOutcome::Failed { .. } | JobOutcome::Cancelled => None,
        }
    }

    /// `true` for [`JobOutcome::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, JobOutcome::Failed { .. })
    }

    /// `true` for [`JobOutcome::Cancelled`].
    pub fn is_cancelled(&self) -> bool {
        matches!(self, JobOutcome::Cancelled)
    }
}

/// Progress snapshot passed to the observer after every finished job.
#[derive(Debug, Clone, Copy)]
pub struct JobProgress {
    /// Jobs finished so far (completed + failed).
    pub done: usize,
    /// Jobs whose every attempt panicked.
    pub failed: usize,
    /// Jobs in the batch.
    pub total: usize,
    /// Mean duration of the [`ETA_WINDOW`] most recently finished jobs,
    /// in microseconds. Windowed rather than all-time so the ETA tracks
    /// the current job mix: a sweep whose early configs are cheap and
    /// late configs expensive (or vice versa) converges to the recent
    /// rate instead of being anchored to stale samples.
    pub mean_job_us: u64,
    /// Worker threads executing the batch.
    pub workers: usize,
}

/// Number of recent job durations the [`JobProgress::mean_job_us`]
/// estimate averages over.
pub const ETA_WINDOW: usize = 32;

/// Minimum finished jobs before [`JobProgress::eta`] and
/// [`JobProgress::mops`] report anything. A single sample is a noisy
/// basis for a rate — the opening tick of a sweep would otherwise
/// extrapolate the whole batch from one (often unrepresentative,
/// cold-cache) job and render a garbage ETA.
pub const RATE_MIN_SAMPLES: usize = 2;

/// Pushes `sample` into the bounded recency window and returns the mean
/// of what the window now holds.
fn windowed_mean(window: &mut VecDeque<u64>, sample: u64) -> u64 {
    if window.len() == ETA_WINDOW {
        window.pop_front();
    }
    window.push_back(sample);
    window.iter().sum::<u64>() / window.len() as u64
}

impl JobProgress {
    /// `true` once enough jobs finished for rate estimates to be
    /// meaningful (see [`RATE_MIN_SAMPLES`]) and the windowed mean is
    /// non-zero (sub-microsecond jobs floor the integer mean to 0,
    /// which would otherwise divide to infinity).
    fn rate_is_trustworthy(&self) -> bool {
        self.done >= RATE_MIN_SAMPLES && self.mean_job_us > 0
    }

    /// Estimated time to batch completion, assuming the remaining jobs
    /// cost the recent-jobs mean spread across the workers. `None`
    /// until [`RATE_MIN_SAMPLES`] jobs finish (a one-sample rate is
    /// noise, and all-instant jobs floor the mean to 0) and once the
    /// batch is done.
    pub fn eta(&self) -> Option<Duration> {
        if !self.rate_is_trustworthy() || self.done >= self.total {
            return None;
        }
        let remaining = (self.total - self.done) as u64;
        let waves = remaining.div_ceil(self.workers.max(1) as u64);
        Some(Duration::from_micros(
            waves.saturating_mul(self.mean_job_us),
        ))
    }

    /// Aggregate replay throughput in Mops/s, given the replayed ops
    /// per job. `None` under the same guards as [`eta`](Self::eta) —
    /// this is the single place the first-window divide-by-zero /
    /// garbage-rate cases are handled, so every progress consumer
    /// (batch sweep, serve daemon) renders the same dashes instead of
    /// its own arithmetic.
    pub fn mops(&self, ops_per_job: f64) -> Option<f64> {
        if !self.rate_is_trustworthy() {
            return None;
        }
        let rate = ops_per_job * self.workers as f64 / self.mean_job_us as f64;
        (rate.is_finite() && rate > 0.0).then_some(rate)
    }
}

/// One point of a worker's throughput / queue-depth time series.
///
/// Workers record one sample per completed job into a ring bounded at
/// [`WORKER_SERIES_CAPACITY`], so the series cost is flat no matter how
/// large the batch is. Samples carry wall-clock offsets and therefore
/// live in the scheduler-telemetry domain (the `sweep.*` metric family)
/// — they never enter deterministic documents or the replay series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSample {
    /// Milliseconds since the batch started.
    pub at_ms: u64,
    /// Jobs this worker had completed when the sample was taken.
    pub jobs: u64,
    /// Own-deque depth right after the sampled pop (0 for a steal —
    /// the thief's own deque was empty by definition).
    pub queue_depth: u64,
}

/// Bound on each worker's [`WorkerSample`] ring.
pub const WORKER_SERIES_CAPACITY: usize = 256;

/// Per-worker scheduler telemetry for one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker executed.
    pub jobs: u64,
    /// Jobs this worker took from another worker's deque.
    pub steals: u64,
    /// Wall-clock spent executing jobs.
    pub busy: Duration,
    /// Wall-clock spent parked (all deques momentarily empty).
    pub idle: Duration,
    /// Park naps taken while waiting for work.
    pub parks: u64,
}

impl WorkerStats {
    /// Busy share of this worker's observed wall-clock, in percent
    /// (100 when the worker never idled, 0 when it never worked).
    pub fn busy_pct(&self) -> f64 {
        let observed = self.busy + self.idle;
        if observed.is_zero() {
            return 0.0;
        }
        100.0 * self.busy.as_secs_f64() / observed.as_secs_f64()
    }
}

/// Batch report: per-job outcomes plus scheduler telemetry.
#[derive(Debug)]
pub struct ExecReport<T> {
    /// One outcome per submitted job, in submission order.
    pub outcomes: Vec<JobOutcome<T>>,
    /// Re-attempts made after panics (across all jobs).
    pub retries: u64,
    /// Jobs a worker executed from another worker's deque.
    pub steals: u64,
    /// Per-worker busy/idle/steal breakdown, one entry per worker.
    pub worker_stats: Vec<WorkerStats>,
    /// Distribution of per-job wall-clock durations, in microseconds.
    pub job_durations_us: Log2Histogram,
    /// Own-deque depth sampled after every local (non-stolen) pop.
    pub queue_depths: Log2Histogram,
    /// Per-worker throughput / queue-depth time series, one bounded
    /// ring per worker (most recent [`WORKER_SERIES_CAPACITY`] jobs).
    pub worker_series: Vec<Vec<WorkerSample>>,
    /// Span-profiler stats merged from every worker thread — without
    /// this, spans recorded on worker threads would die with their
    /// thread-local profilers.
    pub spans: Vec<SpanStat>,
}

impl<T> ExecReport<T> {
    /// Number of failed jobs.
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_failed()).count()
    }

    /// Number of jobs drained without executing after cancellation.
    pub fn cancelled(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_cancelled()).count()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What each worker thread hands back when its loop ends.
#[derive(Default)]
struct WorkerReport {
    stats: WorkerStats,
    job_durations_us: Log2Histogram,
    queue_depths: Log2Histogram,
    series: VecDeque<WorkerSample>,
    spans: Vec<SpanStat>,
}

impl WorkerReport {
    /// Appends one series point, evicting the oldest at capacity.
    fn sample(&mut self, at_ms: u64, queue_depth: u64) {
        if self.series.len() == WORKER_SERIES_CAPACITY {
            self.series.pop_front();
        }
        self.series.push_back(WorkerSample {
            at_ms,
            jobs: self.stats.jobs,
            queue_depth,
        });
    }
}

/// A job grabbed from a deque.
struct Grabbed {
    index: usize,
    /// `Some(depth)` for a local pop (own-queue depth after the pop);
    /// `None` for a steal.
    local_depth: Option<usize>,
}

struct Shared<'a, T, F> {
    jobs: &'a [F],
    queues: Vec<Mutex<VecDeque<usize>>>,
    results: Vec<Mutex<Option<JobOutcome<T>>>>,
    worker_reports: Vec<Mutex<WorkerReport>>,
    remaining: AtomicUsize,
    failed: AtomicUsize,
    retries: AtomicU64,
    steals: AtomicU64,
    busy_us: AtomicU64,
    /// Durations of the most recently finished jobs (bounded at
    /// [`ETA_WINDOW`]), feeding the windowed ETA mean.
    recent_us: Mutex<VecDeque<u64>>,
    workers: usize,
}

impl<T, F> Shared<'_, T, F>
where
    F: Fn() -> T + Sync,
    T: Send,
{
    /// Runs job `index` with panic isolation and bounded retry, records
    /// the outcome, and reports progress. Returns the job's wall-clock.
    fn execute(
        &self,
        index: usize,
        retries: u32,
        observer: Option<&(dyn Fn(JobProgress) + Sync)>,
    ) -> Duration {
        let started = Instant::now();
        let job = &self.jobs[index];
        let mut outcome = None;
        for attempt in 1..=retries.saturating_add(1) {
            if attempt > 1 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                timeline::instant("retry", "sched");
            }
            match catch_unwind(AssertUnwindSafe(job)) {
                Ok(value) => {
                    outcome = Some(JobOutcome::Completed(value));
                    break;
                }
                Err(payload) => {
                    outcome = Some(JobOutcome::Failed {
                        message: panic_message(payload),
                        attempts: attempt,
                    });
                }
            }
        }
        let outcome = outcome.expect("at least one attempt runs");
        if outcome.is_failed() {
            self.failed.fetch_add(1, Ordering::Relaxed);
            timeline::instant("job-failed", "sched");
        }
        *self.results[index].lock().expect("result slot poisoned") = Some(outcome);
        let took = started.elapsed();
        self.busy_us
            .fetch_add(took.as_micros() as u64, Ordering::Relaxed);
        let mean_job_us = {
            let mut window = self.recent_us.lock().expect("eta window poisoned");
            windowed_mean(&mut window, took.as_micros() as u64)
        };
        let total = self.jobs.len();
        let done = total - (self.remaining.fetch_sub(1, Ordering::AcqRel) - 1);
        if let Some(observer) = observer {
            observer(JobProgress {
                done,
                failed: self.failed.load(Ordering::Relaxed),
                total,
                mean_job_us,
                workers: self.workers,
            });
        }
        took
    }

    /// Records job `index` as [`JobOutcome::Cancelled`] without running
    /// it, keeping the `remaining` accounting (and the observer's view
    /// of progress) identical to an executed job.
    fn drain_cancelled(&self, index: usize, observer: Option<&(dyn Fn(JobProgress) + Sync)>) {
        *self.results[index].lock().expect("result slot poisoned") = Some(JobOutcome::Cancelled);
        let total = self.jobs.len();
        let done = total - (self.remaining.fetch_sub(1, Ordering::AcqRel) - 1);
        if let Some(observer) = observer {
            observer(JobProgress {
                done,
                failed: self.failed.load(Ordering::Relaxed),
                total,
                mean_job_us: 0,
                workers: self.workers,
            });
        }
    }

    /// Pops from the worker's own deque (front: batch order) or steals
    /// from a victim's (also front — classic FIFO stealing).
    fn next_job(&self, worker: usize) -> Option<Grabbed> {
        {
            let mut own = self.queues[worker].lock().expect("queue poisoned");
            if let Some(i) = own.pop_front() {
                let depth = own.len();
                return Some(Grabbed {
                    index: i,
                    local_depth: Some(depth),
                });
            }
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(i) = self.queues[victim]
                .lock()
                .expect("queue poisoned")
                .pop_front()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(Grabbed {
                    index: i,
                    local_depth: None,
                });
            }
        }
        None
    }
}

/// Runs `jobs` across a work-stealing pool and returns one outcome per
/// job, in submission order.
///
/// `observer`, when given, is invoked from worker threads after every
/// finished job — the hook behind live progress lines.
///
/// # Panics
///
/// Panics only on scheduler-internal lock poisoning (a worker thread
/// itself can never poison the locks: job panics are caught).
pub fn run_jobs<T, F>(
    jobs: Vec<F>,
    options: &ExecOptions,
    observer: Option<&(dyn Fn(JobProgress) + Sync)>,
) -> ExecReport<T>
where
    F: Fn() -> T + Send + Sync,
    T: Send,
{
    run_jobs_cancellable(jobs, options, None, observer)
}

/// [`run_jobs`] with a cooperative [`CancelToken`]: once the token
/// fires, every job a worker subsequently pops is drained as
/// [`JobOutcome::Cancelled`] without executing, and the batch returns
/// with one outcome per submitted job as usual. Jobs already running
/// when the token fires complete normally (cancellation is polled
/// between jobs, never mid-job).
pub fn run_jobs_cancellable<T, F>(
    jobs: Vec<F>,
    options: &ExecOptions,
    cancel: Option<&CancelToken>,
    observer: Option<&(dyn Fn(JobProgress) + Sync)>,
) -> ExecReport<T>
where
    F: Fn() -> T + Send + Sync,
    T: Send,
{
    let total = jobs.len();
    let workers = options.effective_workers().min(total.max(1));
    let shared = Shared {
        jobs: &jobs,
        queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        results: (0..total).map(|_| Mutex::new(None)).collect(),
        worker_reports: (0..workers)
            .map(|_| Mutex::new(WorkerReport::default()))
            .collect(),
        remaining: AtomicUsize::new(total),
        failed: AtomicUsize::new(0),
        retries: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        busy_us: AtomicU64::new(0),
        recent_us: Mutex::new(VecDeque::with_capacity(ETA_WINDOW)),
        workers,
    };
    // Seed round-robin so every worker starts with nearby batch
    // positions and stealing only happens on genuine imbalance.
    for index in 0..total {
        shared.queues[index % workers]
            .lock()
            .expect("queue poisoned")
            .push_back(index);
    }

    let batch_started = Instant::now();
    thread::scope(|scope| {
        for worker in 0..workers {
            let shared = &shared;
            scope.spawn(move || {
                if timeline::is_enabled() {
                    timeline::set_track_name(format!("worker-{worker}"));
                }
                let mut report = WorkerReport::default();
                // Start of a contiguous idle stretch, if we are in one.
                let mut idle_since: Option<Instant> = None;
                loop {
                    match shared.next_job(worker) {
                        Some(grabbed) => {
                            if let Some(since) = idle_since.take() {
                                report.stats.idle += since.elapsed();
                                timeline::end("idle", "sched");
                            }
                            if cancel.is_some_and(CancelToken::is_cancelled) {
                                shared.drain_cancelled(grabbed.index, observer);
                                continue;
                            }
                            match grabbed.local_depth {
                                Some(depth) => report.queue_depths.observe(depth as u64),
                                None => {
                                    report.stats.steals += 1;
                                    timeline::instant("steal", "sched");
                                }
                            }
                            let took = shared.execute(grabbed.index, options.retries, observer);
                            report.stats.jobs += 1;
                            report.stats.busy += took;
                            report.job_durations_us.observe(took.as_micros() as u64);
                            report.sample(
                                batch_started.elapsed().as_millis() as u64,
                                grabbed.local_depth.unwrap_or(0) as u64,
                            );
                        }
                        None => {
                            if shared.remaining.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            if idle_since.is_none() {
                                idle_since = Some(Instant::now());
                                timeline::begin("idle", "sched");
                            }
                            report.stats.parks += 1;
                            // All queues momentarily empty while peers
                            // still run; jobs are coarse, so a short nap
                            // is cheap.
                            thread::sleep(Duration::from_micros(50));
                        }
                    }
                }
                if let Some(since) = idle_since.take() {
                    report.stats.idle += since.elapsed();
                    timeline::end("idle", "sched");
                }
                // The thread-local span profiler dies with this thread:
                // hand its accumulated stats to the batch report.
                report.spans = span::take_report();
                *shared.worker_reports[worker]
                    .lock()
                    .expect("worker report poisoned") = report;
            });
        }
    });

    let outcomes = shared
        .results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran")
        })
        .collect();
    let mut worker_stats = Vec::with_capacity(workers);
    let mut job_durations_us = Log2Histogram::new();
    let mut queue_depths = Log2Histogram::new();
    let mut worker_series = Vec::with_capacity(workers);
    let mut span_reports = Vec::with_capacity(workers);
    for slot in shared.worker_reports {
        let report = slot.into_inner().expect("worker report poisoned");
        worker_stats.push(report.stats);
        job_durations_us.merge(&report.job_durations_us);
        queue_depths.merge(&report.queue_depths);
        worker_series.push(report.series.into_iter().collect());
        span_reports.push(report.spans);
    }
    ExecReport {
        outcomes,
        retries: shared.retries.into_inner(),
        steals: shared.steals.into_inner(),
        worker_stats,
        job_durations_us,
        queue_depths,
        worker_series,
        spans: span::merge_reports(span_reports),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn opts(workers: usize) -> ExecOptions {
        ExecOptions {
            workers,
            retries: 0,
        }
    }

    #[test]
    fn outcomes_keep_submission_order() {
        for workers in [1, 4] {
            let jobs: Vec<_> = (0..37).map(|i| move || i * 3).collect();
            let report = run_jobs(jobs, &opts(workers), None);
            assert_eq!(report.outcomes.len(), 37);
            for (i, o) in report.outcomes.into_iter().enumerate() {
                assert_eq!(o.completed(), Some(i * 3));
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = run_jobs(Vec::<fn() -> u8>::new(), &opts(4), None);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.failed(), 0);
    }

    #[test]
    fn observer_sees_every_completion() {
        let seen = AtomicU32::new(0);
        let jobs: Vec<_> = (0..10).map(|i| move || i).collect();
        let report = run_jobs(
            jobs,
            &opts(2),
            Some(&|p: JobProgress| {
                seen.fetch_add(1, Ordering::Relaxed);
                assert!(p.done <= p.total);
            }),
        );
        assert_eq!(report.failed(), 0);
        assert_eq!(seen.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn retry_reruns_panicking_job() {
        // Succeeds on the second attempt: the pool must re-run it.
        let tries = AtomicU32::new(0);
        let jobs = vec![|| {
            if tries.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky once");
            }
            7u32
        }];
        let report = run_jobs(
            jobs,
            &ExecOptions {
                workers: 1,
                retries: 2,
            },
            None,
        );
        assert_eq!(report.retries, 1);
        assert_eq!(report.outcomes[0], JobOutcome::Completed(7));
    }

    #[test]
    fn bounded_retry_gives_up() {
        let jobs = vec![|| -> u32 { panic!("always") }];
        let report = run_jobs(
            jobs,
            &ExecOptions {
                workers: 1,
                retries: 1,
            },
            None,
        );
        match &report.outcomes[0] {
            JobOutcome::Failed { message, attempts } => {
                assert_eq!(message, "always");
                assert_eq!(*attempts, 2);
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn effective_workers_resolves_zero() {
        assert!(opts(0).effective_workers() >= 1);
        assert_eq!(opts(3).effective_workers(), 3);
    }

    #[test]
    fn progress_eta_scales_with_remaining_waves() {
        let p = JobProgress {
            done: 4,
            failed: 0,
            total: 12,
            mean_job_us: 1_000,
            workers: 4,
        };
        // 8 jobs over 4 workers = 2 waves of ~1ms each.
        assert_eq!(p.eta(), Some(Duration::from_micros(2_000)));
        let finished = JobProgress { done: 12, ..p };
        assert_eq!(finished.eta(), None);
        let unmeasured = JobProgress {
            mean_job_us: 0,
            ..p
        };
        assert_eq!(unmeasured.eta(), None);
    }

    #[test]
    fn first_tick_reports_no_rate() {
        // One finished job is not a rate: the opening tick must render
        // unknown ETA/Mops, not extrapolate the batch from one sample.
        let first = JobProgress {
            done: 1,
            failed: 0,
            total: 100,
            mean_job_us: 250_000,
            workers: 4,
        };
        assert_eq!(first.eta(), None);
        assert_eq!(first.mops(20_000.0), None);
        // The second sample unlocks both estimates.
        let second = JobProgress { done: 2, ..first };
        assert!(second.eta().is_some());
        assert!(second.mops(20_000.0).is_some());
    }

    #[test]
    fn all_instant_jobs_report_no_rate() {
        // Sub-microsecond jobs floor the integer mean to 0; the rate
        // math would divide by zero. Both estimates must decline.
        let p = JobProgress {
            done: 50,
            failed: 0,
            total: 100,
            mean_job_us: 0,
            workers: 8,
        };
        assert_eq!(p.eta(), None);
        assert_eq!(p.mops(20_000.0), None);
    }

    #[test]
    fn mops_scales_ops_by_workers_over_mean() {
        let p = JobProgress {
            done: 10,
            failed: 0,
            total: 20,
            mean_job_us: 2_000,
            workers: 4,
        };
        // 22k ops per job × 4 workers / 2000 µs = 44 ops/µs = 44 Mops/s.
        let mops = p.mops(22_000.0).expect("trustworthy rate");
        assert!((mops - 44.0).abs() < 1e-9);
        // Degenerate ops counts never emit non-finite or zero rates.
        assert_eq!(p.mops(0.0), None);
        assert_eq!(p.mops(f64::INFINITY), None);
    }

    #[test]
    fn windowed_mean_tracks_recent_jobs_only() {
        let mut window = VecDeque::new();
        // Saturate the window with slow jobs...
        for _ in 0..ETA_WINDOW {
            assert_eq!(windowed_mean(&mut window, 10_000), 10_000);
        }
        // ...then a run of fast ones: the stale 10ms samples age out and
        // the mean converges to the recent rate instead of anchoring.
        let mut mean = 10_000;
        for _ in 0..ETA_WINDOW {
            mean = windowed_mean(&mut window, 100);
        }
        assert_eq!(mean, 100, "all-time mean would report ~5ms here");
        assert_eq!(window.len(), ETA_WINDOW, "window stays bounded");
    }

    #[test]
    fn report_carries_worker_telemetry() {
        let jobs: Vec<_> = (0..16)
            .map(|i| {
                move || {
                    // A little real work so busy time is nonzero.
                    std::thread::sleep(Duration::from_micros(200));
                    i
                }
            })
            .collect();
        let report = run_jobs(jobs, &opts(3), None);
        assert_eq!(report.worker_stats.len(), 3);
        assert_eq!(report.worker_stats.iter().map(|w| w.jobs).sum::<u64>(), 16);
        assert_eq!(
            report.worker_stats.iter().map(|w| w.steals).sum::<u64>(),
            report.steals
        );
        assert_eq!(report.job_durations_us.count(), 16);
        assert!(report.job_durations_us.sum() > 0);
        for w in &report.worker_stats {
            assert!(w.busy > Duration::ZERO);
            assert!((0.0..=100.0).contains(&w.busy_pct()));
        }
        // Locally-popped jobs sampled the owner's queue depth; steals
        // account for the rest.
        assert_eq!(
            report.queue_depths.count() + report.steals,
            16,
            "every grab is either a local pop or a steal"
        );
    }

    #[test]
    fn cancel_drains_remaining_jobs_without_running_them() {
        let token = CancelToken::new();
        let ran = AtomicU32::new(0);
        let jobs: Vec<_> = (0..64)
            .map(|i| {
                let token = token.clone();
                let ran = &ran;
                move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i == 2 {
                        token.cancel();
                    }
                    i
                }
            })
            .collect();
        let report = run_jobs_cancellable(jobs, &opts(1), Some(&token), None);
        assert_eq!(report.outcomes.len(), 64, "every job gets an outcome");
        // Single worker, FIFO order: jobs 0..=2 ran, everything after the
        // firing job was drained.
        assert_eq!(ran.load(Ordering::SeqCst), 3);
        assert_eq!(report.cancelled(), 61);
        assert_eq!(report.outcomes[2], JobOutcome::Completed(2));
        assert!(report.outcomes[3].is_cancelled());
        assert_eq!(report.outcomes[3].clone().completed(), None);
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let token = CancelToken::new();
        let jobs: Vec<_> = (0..10).map(|i| move || i).collect();
        let report = run_jobs_cancellable(jobs, &opts(4), Some(&token), None);
        assert_eq!(report.cancelled(), 0);
        for (i, o) in report.outcomes.into_iter().enumerate() {
            assert_eq!(o.completed(), Some(i));
        }
        assert!(!token.is_cancelled());
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn worker_series_is_recorded_per_job_and_bounded() {
        // Small batch: one sample per completed job, per worker.
        let jobs: Vec<_> = (0..10).map(|i| move || i).collect();
        let report = run_jobs(jobs, &opts(2), None);
        assert_eq!(report.worker_series.len(), 2);
        let samples: u64 = report.worker_series.iter().map(|s| s.len() as u64).sum();
        assert_eq!(samples, 10);
        for series in &report.worker_series {
            for pair in series.windows(2) {
                assert!(pair[0].jobs < pair[1].jobs, "jobs count is monotone");
                assert!(pair[0].at_ms <= pair[1].at_ms, "time is monotone");
            }
        }

        // Oversized batch: the ring stays bounded at the capacity.
        let jobs: Vec<_> = (0..WORKER_SERIES_CAPACITY + 50)
            .map(|i| move || i)
            .collect();
        let report = run_jobs(jobs, &opts(1), None);
        assert_eq!(report.worker_series[0].len(), WORKER_SERIES_CAPACITY);
        let last = report.worker_series[0].last().expect("nonempty");
        assert_eq!(last.jobs, (WORKER_SERIES_CAPACITY + 50) as u64);
    }
}
