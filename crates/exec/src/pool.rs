//! A std-only work-stealing job scheduler with per-job panic isolation.
//!
//! The pool runs a fixed batch of independent jobs across `workers`
//! threads. Each worker owns a deque seeded round-robin with job
//! indices; when its own deque drains it steals from the front of a
//! victim's deque, so long-running jobs never serialize the tail of a
//! batch behind one thread. Jobs are plain closures over shared state
//! (`Fn() -> T`), which keeps them re-runnable for bounded retry.
//!
//! Every job runs under [`std::panic::catch_unwind`]: a panicking job
//! becomes a structured [`JobOutcome::Failed`] carrying the panic
//! payload, and the remaining jobs keep running — a single poisoned
//! experiment cannot abort a sweep. Outcomes are returned in submission
//! order regardless of the schedule, which is what lets callers build
//! deterministic, thread-count-independent reports on top.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Worker threads; `0` means [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Extra attempts after a panic (0 = fail on the first panic).
    pub retries: u32,
}

impl ExecOptions {
    /// The configured worker count with `0` resolved to the machine's
    /// available parallelism (at least 1).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// How one job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome<T> {
    /// The job returned a value.
    Completed(T),
    /// Every attempt panicked; the sweep continued without this job.
    Failed {
        /// The panic payload of the last attempt, stringified.
        message: String,
        /// Total attempts made (1 + retries).
        attempts: u32,
    },
}

impl<T> JobOutcome<T> {
    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            JobOutcome::Completed(v) => Some(v),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// `true` for [`JobOutcome::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, JobOutcome::Failed { .. })
    }
}

/// Progress snapshot passed to the observer after every finished job.
#[derive(Debug, Clone, Copy)]
pub struct JobProgress {
    /// Jobs finished so far (completed + failed).
    pub done: usize,
    /// Jobs whose every attempt panicked.
    pub failed: usize,
    /// Jobs in the batch.
    pub total: usize,
}

/// Batch report: per-job outcomes plus scheduler counters.
#[derive(Debug)]
pub struct ExecReport<T> {
    /// One outcome per submitted job, in submission order.
    pub outcomes: Vec<JobOutcome<T>>,
    /// Re-attempts made after panics (across all jobs).
    pub retries: u64,
    /// Jobs a worker executed from another worker's deque.
    pub steals: u64,
}

impl<T> ExecReport<T> {
    /// Number of failed jobs.
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_failed()).count()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct Shared<'a, T, F> {
    jobs: &'a [F],
    queues: Vec<Mutex<VecDeque<usize>>>,
    results: Vec<Mutex<Option<JobOutcome<T>>>>,
    remaining: AtomicUsize,
    failed: AtomicUsize,
    retries: AtomicU64,
    steals: AtomicU64,
}

impl<T, F> Shared<'_, T, F>
where
    F: Fn() -> T + Sync,
    T: Send,
{
    /// Runs job `index` with panic isolation and bounded retry, records
    /// the outcome, and reports progress.
    fn execute(&self, index: usize, retries: u32, observer: Option<&(dyn Fn(JobProgress) + Sync)>) {
        let job = &self.jobs[index];
        let mut outcome = None;
        for attempt in 1..=retries.saturating_add(1) {
            if attempt > 1 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            match catch_unwind(AssertUnwindSafe(job)) {
                Ok(value) => {
                    outcome = Some(JobOutcome::Completed(value));
                    break;
                }
                Err(payload) => {
                    outcome = Some(JobOutcome::Failed {
                        message: panic_message(payload),
                        attempts: attempt,
                    });
                }
            }
        }
        let outcome = outcome.expect("at least one attempt runs");
        if outcome.is_failed() {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        *self.results[index].lock().expect("result slot poisoned") = Some(outcome);
        let total = self.jobs.len();
        let done = total - (self.remaining.fetch_sub(1, Ordering::AcqRel) - 1);
        if let Some(observer) = observer {
            observer(JobProgress {
                done,
                failed: self.failed.load(Ordering::Relaxed),
                total,
            });
        }
    }

    /// Pops from the worker's own deque (front: batch order) or steals
    /// from a victim's (also front — classic FIFO stealing).
    fn next_job(&self, worker: usize) -> Option<usize> {
        if let Some(i) = self.queues[worker]
            .lock()
            .expect("queue poisoned")
            .pop_front()
        {
            return Some(i);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(i) = self.queues[victim]
                .lock()
                .expect("queue poisoned")
                .pop_front()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(i);
            }
        }
        None
    }
}

/// Runs `jobs` across a work-stealing pool and returns one outcome per
/// job, in submission order.
///
/// `observer`, when given, is invoked from worker threads after every
/// finished job — the hook behind live progress lines.
///
/// # Panics
///
/// Panics only on scheduler-internal lock poisoning (a worker thread
/// itself can never poison the locks: job panics are caught).
pub fn run_jobs<T, F>(
    jobs: Vec<F>,
    options: &ExecOptions,
    observer: Option<&(dyn Fn(JobProgress) + Sync)>,
) -> ExecReport<T>
where
    F: Fn() -> T + Send + Sync,
    T: Send,
{
    let total = jobs.len();
    let workers = options.effective_workers().min(total.max(1));
    let shared = Shared {
        jobs: &jobs,
        queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        results: (0..total).map(|_| Mutex::new(None)).collect(),
        remaining: AtomicUsize::new(total),
        failed: AtomicUsize::new(0),
        retries: AtomicU64::new(0),
        steals: AtomicU64::new(0),
    };
    // Seed round-robin so every worker starts with nearby batch
    // positions and stealing only happens on genuine imbalance.
    for index in 0..total {
        shared.queues[index % workers]
            .lock()
            .expect("queue poisoned")
            .push_back(index);
    }

    thread::scope(|scope| {
        for worker in 0..workers {
            let shared = &shared;
            scope.spawn(move || loop {
                match shared.next_job(worker) {
                    Some(index) => shared.execute(index, options.retries, observer),
                    None => {
                        if shared.remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        // All queues momentarily empty while peers still
                        // run; jobs are coarse, so a short nap is cheap.
                        thread::sleep(Duration::from_micros(50));
                    }
                }
            });
        }
    });

    let outcomes = shared
        .results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran")
        })
        .collect();
    ExecReport {
        outcomes,
        retries: shared.retries.into_inner(),
        steals: shared.steals.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn opts(workers: usize) -> ExecOptions {
        ExecOptions {
            workers,
            retries: 0,
        }
    }

    #[test]
    fn outcomes_keep_submission_order() {
        for workers in [1, 4] {
            let jobs: Vec<_> = (0..37).map(|i| move || i * 3).collect();
            let report = run_jobs(jobs, &opts(workers), None);
            assert_eq!(report.outcomes.len(), 37);
            for (i, o) in report.outcomes.into_iter().enumerate() {
                assert_eq!(o.completed(), Some(i * 3));
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = run_jobs(Vec::<fn() -> u8>::new(), &opts(4), None);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.failed(), 0);
    }

    #[test]
    fn observer_sees_every_completion() {
        let seen = AtomicU32::new(0);
        let jobs: Vec<_> = (0..10).map(|i| move || i).collect();
        let report = run_jobs(
            jobs,
            &opts(2),
            Some(&|p: JobProgress| {
                seen.fetch_add(1, Ordering::Relaxed);
                assert!(p.done <= p.total);
            }),
        );
        assert_eq!(report.failed(), 0);
        assert_eq!(seen.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn retry_reruns_panicking_job() {
        // Succeeds on the second attempt: the pool must re-run it.
        let tries = AtomicU32::new(0);
        let jobs = vec![|| {
            if tries.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky once");
            }
            7u32
        }];
        let report = run_jobs(
            jobs,
            &ExecOptions {
                workers: 1,
                retries: 2,
            },
            None,
        );
        assert_eq!(report.retries, 1);
        assert_eq!(report.outcomes[0], JobOutcome::Completed(7));
    }

    #[test]
    fn bounded_retry_gives_up() {
        let jobs = vec![|| -> u32 { panic!("always") }];
        let report = run_jobs(
            jobs,
            &ExecOptions {
                workers: 1,
                retries: 1,
            },
            None,
        );
        match &report.outcomes[0] {
            JobOutcome::Failed { message, attempts } => {
                assert_eq!(message, "always");
                assert_eq!(*attempts, 2);
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn effective_workers_resolves_zero() {
        assert!(opts(0).effective_workers() >= 1);
        assert_eq!(opts(3).effective_workers(), 3);
    }
}
