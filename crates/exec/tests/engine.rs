//! Engine behaviour, end to end: crash isolation (one poisoned job must
//! surface as a structured failure while the rest of the sweep
//! completes) and scheduler telemetry (worker stats, merged span
//! profiles).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use cache8t_exec::{
    document_with_benchmarks, run_jobs, run_sweep, to_document, BenchmarkHook, CancelToken,
    ExecOptions, GeometryPoint, JobOutcome, SweepOptions, SweepPlan, TraceStore,
};
use cache8t_trace::profiles;

#[test]
fn panicking_job_fails_alone_while_the_batch_completes() {
    let jobs: Vec<Box<dyn Fn() -> u32 + Send + Sync>> = (0..20)
        .map(|i| -> Box<dyn Fn() -> u32 + Send + Sync> {
            if i == 7 {
                Box::new(|| panic!("benchmark 7 hit a poisoned input"))
            } else {
                Box::new(move || i * 10)
            }
        })
        .collect();
    let report = run_jobs(
        jobs,
        &ExecOptions {
            workers: 4,
            retries: 0,
        },
        None,
    );

    assert_eq!(report.outcomes.len(), 20);
    assert_eq!(report.failed(), 1);
    for (i, outcome) in report.outcomes.iter().enumerate() {
        if i == 7 {
            let JobOutcome::Failed { message, attempts } = outcome else {
                panic!("job 7 should have failed, got {outcome:?}");
            };
            assert_eq!(message, "benchmark 7 hit a poisoned input");
            assert_eq!(*attempts, 1);
        } else {
            assert_eq!(*outcome, JobOutcome::Completed(i as u32 * 10));
        }
    }
}

#[test]
fn sweep_reports_a_poisoned_benchmark_and_keeps_the_rest() {
    // A profile with an impossible read share makes every unit of its
    // benchmark panic inside trace generation (`ProfiledGenerator::new`
    // rejects it) — the realistic "one experiment is poisoned" case.
    let mut poisoned = profiles::by_name("gcc").expect("suite profile");
    poisoned.name = "poisoned".to_string();
    poisoned.read_share = 2.0;
    let plan = SweepPlan {
        profiles: vec![
            profiles::by_name("gcc").expect("suite profile"),
            poisoned,
            profiles::by_name("mcf").expect("suite profile"),
        ],
        geometries: vec![GeometryPoint::named("baseline").expect("named geometry")],
        ops: 4_000,
        seed: 3,
    };
    let outcome = run_sweep(
        &plan,
        &SweepOptions {
            exec: ExecOptions {
                workers: 2,
                retries: 0,
            },
            shard: None,
            progress: false,
            store: Arc::new(TraceStore::in_memory()),
            series: None,
            ..SweepOptions::default()
        },
    );

    // All five units of the poisoned benchmark fail with the generator's
    // message; nothing else is affected.
    assert_eq!(outcome.failures.len(), 5);
    for failure in &outcome.failures {
        assert_eq!(failure.benchmark, "poisoned");
        assert_eq!(failure.geometry, "baseline");
        assert!(
            failure.message.contains("invalid workload profile"),
            "panic payload lost: {}",
            failure.message
        );
        assert_eq!(failure.attempts, 1);
    }
    let healthy = &outcome.geometries[0];
    assert!(healthy.results[0].is_some(), "gcc must complete");
    assert!(healthy.results[1].is_none(), "poisoned must be dropped");
    assert!(healthy.results[2].is_some(), "mcf must complete");
    assert_eq!(healthy.results[0].as_ref().unwrap().name, "gcc");
    assert_eq!(healthy.results[2].as_ref().unwrap().name, "mcf");

    // And into_complete refuses, naming the culprit.
    let err = outcome
        .into_complete()
        .expect_err("failures must propagate");
    assert!(err.contains("poisoned"), "unhelpful error: {err}");
}

fn sweep_options(workers: usize) -> SweepOptions {
    SweepOptions {
        exec: ExecOptions {
            workers,
            retries: 0,
        },
        shard: None,
        progress: false,
        store: Arc::new(TraceStore::in_memory()),
        series: None,
        ..SweepOptions::default()
    }
}

fn small_plan() -> SweepPlan {
    SweepPlan {
        profiles: vec![
            profiles::by_name("gcc").expect("suite profile"),
            profiles::by_name("mcf").expect("suite profile"),
        ],
        geometries: vec![GeometryPoint::named("baseline").expect("named geometry")],
        ops: 4_000,
        seed: 3,
    }
}

/// The span-profiler data-loss regression test: worker threads own
/// thread-local profilers that die with the pool, so a parallel sweep
/// used to report an empty span profile. The pool now hands every
/// worker's report to the outcome, and the merged result must not
/// depend on the worker count.
#[test]
fn parallel_sweep_reports_the_same_span_set_as_serial() {
    let summarize = |workers: usize| -> BTreeMap<&'static str, u64> {
        let outcome = run_sweep(&small_plan(), &sweep_options(workers));
        assert!(outcome.failures.is_empty());
        assert!(
            !outcome.spans.is_empty(),
            "{workers}-worker sweep lost its span profile"
        );
        outcome.spans.iter().map(|s| (s.name, s.calls)).collect()
    };
    let serial = summarize(1);
    let parallel = summarize(4);
    assert_eq!(
        serial, parallel,
        "span set must not depend on the worker count"
    );
}

/// Resume building block: an explicit slot set must run exactly those
/// benchmarks, and a document assembled from hook-captured benchmark
/// values via `document_with_benchmarks` must be byte-identical to the
/// full run's `to_document` output.
#[test]
fn slot_selection_and_hook_reassemble_the_full_document() {
    let plan = small_plan();
    let full = run_sweep(&plan, &sweep_options(2));
    assert!(full.failures.is_empty());
    let expected = serde_json::to_string_pretty(&to_document(&plan, &full));

    // Run each benchmark slot in its own sweep, capturing results
    // through the live hook (as the checkpoint journal does).
    let captured: Arc<Mutex<Vec<(usize, usize, serde_json::Value)>>> =
        Arc::new(Mutex::new(Vec::new()));
    for slot in 0..plan.benchmark_count() {
        let sink = Arc::clone(&captured);
        let options = SweepOptions {
            slots: Some(vec![slot]),
            on_benchmark: Some(BenchmarkHook::new(move |event| {
                sink.lock().unwrap().push((
                    event.geometry,
                    event.slot,
                    serde_json::to_value(event.result),
                ));
            })),
            ..sweep_options(2)
        };
        let outcome = run_sweep(&plan, &options);
        assert!(outcome.failures.is_empty());
        // Exactly one benchmark completed in this slice.
        let done: usize = outcome
            .geometries
            .iter()
            .map(|g| g.results.iter().flatten().count())
            .sum();
        assert_eq!(done, 1, "slot {slot} must run exactly one benchmark");
    }

    let mut captured = captured.lock().unwrap().clone();
    captured.sort_by_key(|&(_, slot, _)| slot);
    let mut benchmarks: Vec<Vec<serde_json::Value>> = vec![Vec::new(); plan.geometries.len()];
    for (g, _, value) in captured {
        benchmarks[g].push(value);
    }
    let rebuilt = serde_json::to_string_pretty(&document_with_benchmarks(&plan, &benchmarks));
    assert_eq!(rebuilt, expected, "journalled reassembly must match batch");
}

/// Cancelling mid-sweep drains the queued units and reports them; the
/// finished prefix stays usable.
#[test]
fn cancelled_sweep_returns_partial_results() {
    let plan = small_plan();
    let token = CancelToken::new();
    token.cancel(); // fire before the first job: everything drains
    let outcome = run_sweep(
        &plan,
        &SweepOptions {
            cancel: Some(token),
            ..sweep_options(2)
        },
    );
    assert!(outcome.failures.is_empty());
    assert_eq!(outcome.cancelled, 10, "2 benchmarks x 5 units drained");
    for g in &outcome.geometries {
        assert!(g.results.iter().all(Option::is_none));
    }
    let metrics = outcome.metrics.to_value();
    let cancelled = metrics
        .get("counters")
        .and_then(|c| c.get("sweep.jobs_cancelled"))
        .and_then(serde_json::Value::as_u64);
    assert_eq!(cancelled, Some(10));
}

#[test]
fn scheduler_telemetry_accounts_for_every_job() {
    let outcome = run_sweep(&small_plan(), &sweep_options(3));
    assert!(outcome.failures.is_empty());
    let metrics = outcome.metrics.to_value();
    let counter = |name: &str| {
        metrics
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    let jobs = counter("sweep.jobs");
    assert_eq!(jobs, 10, "2 benchmarks x 5 units");
    // Per-worker job counts must add up to the batch total.
    let per_worker: u64 = (0..3)
        .map(|i| counter(&format!("sweep.worker.{i}.jobs")))
        .sum();
    assert_eq!(per_worker, jobs);
    let steals: u64 = (0..3)
        .map(|i| counter(&format!("sweep.worker.{i}.steals")))
        .sum();
    assert_eq!(steals, counter("sweep.steals"));
    // The per-job duration histogram saw exactly one sample per job.
    let job_us_count = metrics
        .get("histograms")
        .and_then(|h| h.get("sweep.job_us"))
        .and_then(|h| h.get("count"))
        .and_then(serde_json::Value::as_u64)
        .expect("sweep.job_us histogram");
    assert_eq!(job_us_count, jobs);
}

/// The streaming tentpole at the engine level: a streamed sweep — any
/// chunk size, any worker count, sampled or not — serializes to the
/// exact bytes of the materialized sweep. Streaming changes the memory
/// footprint, never the answer.
#[test]
fn streamed_sweeps_serialize_to_the_materialized_bytes() {
    let plan = small_plan();
    let document = |workers: usize, stream_chunk_ops: Option<usize>| {
        let options = SweepOptions {
            stream_chunk_ops,
            series: Some(cache8t_obs::SamplerConfig {
                cadence: 512,
                ring_capacity: 16,
            }),
            ..sweep_options(workers)
        };
        let outcome = run_sweep(&plan, &options);
        assert!(outcome.failures.is_empty());
        let series: Vec<_> = outcome.series().cloned().collect();
        (
            serde_json::to_string(&to_document(&plan, &outcome)).unwrap(),
            series,
        )
    };

    let (reference, reference_series) = document(1, None);
    for workers in [1usize, 4] {
        for chunk_ops in [700usize, 4_096] {
            let (streamed, series) = document(workers, Some(chunk_ops));
            assert_eq!(
                reference, streamed,
                "workers={workers} chunk_ops={chunk_ops}"
            );
            assert_eq!(
                reference_series, series,
                "series: workers={workers} chunk_ops={chunk_ops}"
            );
        }
    }
}

/// Streamed units deduplicate generation through the shared frontier:
/// a multi-unit benchmark over one stream generates each chunk far
/// fewer times than units-x-chunks.
#[test]
fn streamed_sweep_reports_stream_counters() {
    let options = SweepOptions {
        stream_chunk_ops: Some(1_000),
        ..sweep_options(2)
    };
    let outcome = run_sweep(&small_plan(), &options);
    assert!(outcome.failures.is_empty());
    let metrics = outcome.metrics.to_value();
    let counter = |name: &str| {
        metrics
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0)
    };
    assert!(counter("sweep.trace.stream_chunks") > 0, "streaming ran");
    assert_eq!(counter("sweep.trace.generated"), 0, "nothing materialized");
    // 5 units consumed the same chunk sequence; most reads must have
    // been window hits or private-generator memoization, so generation
    // plus restarts stays well under 5x the chunk count.
    let chunks_per_trace = 4_400u64.div_ceil(1_000);
    assert!(
        counter("sweep.trace.stream_chunks") < 5 * 2 * chunks_per_trace,
        "dedup failed: {} chunks generated",
        counter("sweep.trace.stream_chunks")
    );
}
