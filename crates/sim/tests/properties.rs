//! Property tests for the cache substrate: the cache must behave exactly
//! like a reference model (a flat map plus residency bookkeeping) under
//! arbitrary operation sequences.

use std::collections::HashMap;

use proptest::prelude::*;

use cache8t_sim::{Address, CacheGeometry, DataCache, MainMemory, ReplacementKind};

fn tiny_geometry() -> CacheGeometry {
    CacheGeometry::new(256, 2, 32).expect("valid geometry")
}

#[derive(Debug, Clone)]
enum Op {
    Read(u64),
    Write(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64).prop_map(|w| Op::Read(w * 8)),
        (0u64..64, 0u64..8).prop_map(|(w, v)| Op::Write(w * 8, v)),
    ]
}

/// A write-allocate cache driver mirroring what the controllers do.
fn drive(cache: &mut DataCache, memory: &mut MainMemory, op: &Op) -> Option<u64> {
    let (addr, write) = match op {
        Op::Read(a) => (Address::new(*a), None),
        Op::Write(a, v) => (Address::new(*a), Some(*v)),
    };
    if cache.probe(addr).is_none() {
        let base = cache.geometry().block_base(addr);
        let out = cache.fill(base, memory.read_block_ref(base));
        if let Some(victim) = out.evicted {
            if victim.dirty {
                memory.write_block_from(victim.base, &victim.data);
            }
        }
    }
    match write {
        Some(v) => {
            cache.write_word(addr, v).expect("resident after fill");
            None
        }
        None => Some(cache.read_word(addr).expect("resident after fill")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_reads_match_flat_memory_model(ops in prop::collection::vec(op_strategy(), 1..500)) {
        let mut cache = DataCache::new(tiny_geometry(), ReplacementKind::Lru);
        let mut memory = MainMemory::new(32);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in &ops {
            let got = drive(&mut cache, &mut memory, op);
            match op {
                Op::Read(a) => {
                    let expected = model.get(a).copied().unwrap_or(0);
                    prop_assert_eq!(got, Some(expected), "read {:#x}", a);
                }
                Op::Write(a, v) => {
                    model.insert(*a, *v);
                }
            }
        }
        // Write everything back and compare the full memory image.
        let dirty: Vec<_> = cache
            .iter_valid_lines()
            .filter(|(_, _, line)| line.is_dirty())
            .map(|(set, way, _)| (set, way))
            .collect();
        let g = cache.geometry();
        for (set, way) in dirty {
            let line = cache.set(set).line(way);
            let base = g.block_base_from_parts(line.tag(), set);
            memory.write_block_from(base, line.data());
        }
        for (&a, &v) in &model {
            prop_assert_eq!(memory.read_word(Address::new(a)), v, "final {:#x}", a);
        }
    }

    #[test]
    fn residency_never_exceeds_capacity(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let g = tiny_geometry();
        let mut cache = DataCache::new(g, ReplacementKind::Lru);
        let mut memory = MainMemory::new(32);
        for op in &ops {
            drive(&mut cache, &mut memory, op);
            prop_assert!(cache.resident_blocks() as u64 <= g.num_sets() * g.ways());
            for set_idx in 0..g.num_sets() {
                let set = cache.set(set_idx);
                // No duplicate tags within a set.
                let mut tags: Vec<u64> = set
                    .iter()
                    .filter(|l| l.is_valid())
                    .map(|l| l.tag())
                    .collect();
                let before = tags.len();
                tags.dedup();
                tags.sort_unstable();
                tags.dedup();
                prop_assert_eq!(tags.len(), before, "duplicate tag in set {}", set_idx);
            }
        }
    }

    #[test]
    fn all_replacement_policies_are_functionally_equivalent(
        ops in prop::collection::vec(op_strategy(), 1..300)
    ) {
        // Different victims, same values: replacement policy must never
        // change what a read returns.
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut caches: Vec<(DataCache, MainMemory)> = [
            ReplacementKind::Lru,
            ReplacementKind::Fifo,
            ReplacementKind::Random { seed: 9 },
            ReplacementKind::TreePlru,
        ]
        .into_iter()
        .map(|k| (DataCache::new(tiny_geometry(), k), MainMemory::new(32)))
        .collect();
        for op in &ops {
            if let Op::Write(a, v) = op {
                model.insert(*a, *v);
            }
            for (cache, memory) in &mut caches {
                let got = drive(cache, memory, op);
                if let Op::Read(a) = op {
                    let expected = model.get(a).copied().unwrap_or(0);
                    prop_assert_eq!(got, Some(expected));
                }
            }
        }
    }

    #[test]
    fn geometry_decomposition_roundtrips(
        raw in any::<u64>(),
        capacity_log in 7u32..20,
        ways_log in 0u32..3,
        block_log in 3u32..7,
    ) {
        let capacity = 1u64 << capacity_log;
        let ways = 1u64 << ways_log;
        let block = 1u64 << block_log;
        prop_assume!(capacity >= ways * block);
        let g = CacheGeometry::new(capacity, ways, block).expect("constrained to valid");
        let a = Address::new(raw);
        let rebuilt = g
            .block_base_from_parts(g.tag_of(a), g.set_index_of(a))
            .offset(g.block_offset_of(a));
        prop_assert_eq!(rebuilt, a);
        prop_assert!(g.set_index_of(a) < g.num_sets());
    }
}
