//! Replacement policies.
//!
//! The paper's baseline cache uses LRU (§5.1). The other policies are
//! provided for sensitivity studies (the `ext_ablations` harness sweeps
//! them) and to keep the substrate generally useful.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-set replacement state.
///
/// One policy instance manages the ways of a single cache set. The cache
/// calls [`touch`](ReplacementPolicy::touch) on every hit,
/// [`filled`](ReplacementPolicy::filled) when a block is installed, and
/// [`victim`](ReplacementPolicy::victim) to choose a way to evict when the
/// set is full (the cache itself prefers invalid ways, so `victim` may
/// assume all ways are valid).
///
/// This trait is object-safe; caches store `Box<dyn ReplacementPolicy>` per
/// set so heterogeneous experiments can share one cache type.
pub trait ReplacementPolicy: fmt::Debug + Send {
    /// Records a hit on `way`.
    fn touch(&mut self, way: usize);

    /// Records that a new block was installed in `way`.
    fn filled(&mut self, way: usize);

    /// Chooses the way to evict. All ways are valid when this is called.
    fn victim(&mut self) -> usize;

    /// Number of ways this state tracks.
    fn ways(&self) -> usize;
}

/// Factory for per-set replacement state.
///
/// # Example
///
/// ```
/// use cache8t_sim::{ReplacementKind, ReplacementPolicy};
///
/// let mut lru = ReplacementKind::Lru.build(4);
/// for way in 0..4 {
///     lru.filled(way);
/// }
/// lru.touch(0);
/// assert_eq!(lru.victim(), 1); // way 1 is now least recently used
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementKind {
    /// Least recently used — the paper's policy.
    Lru,
    /// First in, first out.
    Fifo,
    /// Uniform random victim selection with a deterministic seed.
    Random {
        /// Seed for the per-set RNG (each set derives its own stream).
        seed: u64,
    },
    /// Tree-based pseudo-LRU (the common hardware approximation).
    TreePlru,
}

impl ReplacementKind {
    /// Builds per-set state for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0`.
    pub fn build(self, ways: usize) -> Box<dyn ReplacementPolicy> {
        assert!(ways > 0, "a set must have at least one way");
        match self {
            ReplacementKind::Lru => Box::new(Lru::new(ways)),
            ReplacementKind::Fifo => Box::new(Fifo::new(ways)),
            ReplacementKind::Random { seed } => Box::new(RandomPolicy::new(ways, seed)),
            ReplacementKind::TreePlru => Box::new(TreePlru::new(ways)),
        }
    }
}

impl Default for ReplacementKind {
    /// LRU, the paper's baseline policy.
    fn default() -> Self {
        ReplacementKind::Lru
    }
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementKind::Lru => f.write_str("lru"),
            ReplacementKind::Fifo => f.write_str("fifo"),
            ReplacementKind::Random { .. } => f.write_str("random"),
            ReplacementKind::TreePlru => f.write_str("tree-plru"),
        }
    }
}

/// True least-recently-used replacement.
///
/// Tracks a recency stamp per way; O(ways) victim selection, which is fine
/// for the small associativities of L1 caches.
#[derive(Debug, Clone)]
pub struct Lru {
    stamps: Vec<u64>,
    clock: u64,
}

impl Lru {
    /// Creates LRU state for `ways` ways.
    pub fn new(ways: usize) -> Self {
        Lru {
            stamps: vec![0; ways],
            clock: 0,
        }
    }

    fn bump(&mut self, way: usize) {
        self.clock += 1;
        self.stamps[way] = self.clock;
    }
}

impl ReplacementPolicy for Lru {
    fn touch(&mut self, way: usize) {
        self.bump(way);
    }

    fn filled(&mut self, way: usize) {
        self.bump(way);
    }

    fn victim(&mut self) -> usize {
        let (way, _) = self
            .stamps
            .iter()
            .enumerate()
            .min_by_key(|&(_, stamp)| *stamp)
            .expect("at least one way");
        way
    }

    fn ways(&self) -> usize {
        self.stamps.len()
    }
}

/// First-in-first-out replacement: victim rotates through the ways in fill
/// order, ignoring hits.
#[derive(Debug, Clone)]
pub struct Fifo {
    order: Vec<u64>,
    clock: u64,
}

impl Fifo {
    /// Creates FIFO state for `ways` ways.
    pub fn new(ways: usize) -> Self {
        Fifo {
            order: vec![0; ways],
            clock: 0,
        }
    }
}

impl ReplacementPolicy for Fifo {
    fn touch(&mut self, _way: usize) {
        // FIFO ignores hits by definition.
    }

    fn filled(&mut self, way: usize) {
        self.clock += 1;
        self.order[way] = self.clock;
    }

    fn victim(&mut self) -> usize {
        let (way, _) = self
            .order
            .iter()
            .enumerate()
            .min_by_key(|&(_, stamp)| *stamp)
            .expect("at least one way");
        way
    }

    fn ways(&self) -> usize {
        self.order.len()
    }
}

/// Uniform random replacement with a deterministic per-instance stream.
pub struct RandomPolicy {
    ways: usize,
    rng: SmallRng,
}

impl RandomPolicy {
    /// Creates random-replacement state for `ways` ways seeded with `seed`.
    pub fn new(ways: usize, seed: u64) -> Self {
        RandomPolicy {
            ways,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl fmt::Debug for RandomPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RandomPolicy")
            .field("ways", &self.ways)
            .finish_non_exhaustive()
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn touch(&mut self, _way: usize) {}

    fn filled(&mut self, _way: usize) {}

    fn victim(&mut self) -> usize {
        self.rng.gen_range(0..self.ways)
    }

    fn ways(&self) -> usize {
        self.ways
    }
}

/// Tree pseudo-LRU: a binary tree of direction bits over the ways.
///
/// On an access every node on the path to the way is flipped to point away
/// from it; the victim is found by following the direction bits from the
/// root. Requires a power-of-two number of ways (all paper configurations
/// are 4-way).
#[derive(Debug, Clone)]
pub struct TreePlru {
    ways: usize,
    /// `bits[i]` for internal node `i` (heap order, root = 0):
    /// `false` = left subtree is colder, `true` = right subtree is colder.
    bits: Vec<bool>,
}

impl TreePlru {
    /// Creates tree-PLRU state for `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is not a power of two.
    pub fn new(ways: usize) -> Self {
        assert!(
            ways.is_power_of_two(),
            "tree PLRU requires power-of-two ways"
        );
        TreePlru {
            ways,
            bits: vec![false; ways.saturating_sub(1)],
        }
    }

    fn promote(&mut self, way: usize) {
        if self.ways == 1 {
            return;
        }
        // Walk from the root toward `way`, pointing every node away from it.
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let goes_right = way >= mid;
            // Point toward the *other* subtree (the colder one).
            self.bits[node] = !goes_right;
            node = 2 * node + if goes_right { 2 } else { 1 };
            if goes_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
}

impl ReplacementPolicy for TreePlru {
    fn touch(&mut self, way: usize) {
        self.promote(way);
    }

    fn filled(&mut self, way: usize) {
        self.promote(way);
    }

    fn victim(&mut self) -> usize {
        if self.ways == 1 {
            return 0;
        }
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let go_right = self.bits[node];
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn ways(&self) -> usize {
        self.ways
    }
}

/// Flat, monomorphized replacement state for *every* set of a cache.
///
/// [`DataCache`](crate::DataCache) used to hold one
/// `Box<dyn ReplacementPolicy>` per set; every touch on the hot path
/// paid a vtable call into a separately allocated object. `PolicyTable`
/// keeps the same four policies' state in contiguous arrays indexed by
/// `set * ways + way` and dispatches with one enum match, so the
/// compiler monomorphizes each arm and the state shares cache lines
/// with its neighbours.
///
/// Semantics are bit-identical to building the per-set trait objects
/// with [`ReplacementKind::build`]: the per-policy update and victim
/// rules are the same code shapes, and the `Random` policy derives the
/// same per-set RNG stream (`seed ^ set * 0x9e37_79b9_7f4a_7c15`) the
/// per-set construction used.
#[derive(Debug, Clone)]
pub enum PolicyTable {
    /// True LRU: one recency stamp per way, one clock per set.
    Lru {
        /// Recency stamps, `set * ways + way`.
        stamps: Box<[u64]>,
        /// Per-set stamp clocks.
        clock: Box<[u64]>,
    },
    /// FIFO: one fill stamp per way, one clock per set; hits ignored.
    Fifo {
        /// Fill-order stamps, `set * ways + way`.
        order: Box<[u64]>,
        /// Per-set fill clocks.
        clock: Box<[u64]>,
    },
    /// Uniform random victims from one deterministic stream per set.
    Random {
        /// Per-set RNG streams.
        rngs: Box<[SmallRng]>,
    },
    /// Tree pseudo-LRU: `ways - 1` direction bits per set.
    TreePlru {
        /// Direction bits, `set * (ways - 1) + node` (heap order).
        bits: Box<[bool]>,
    },
}

impl PolicyTable {
    /// Builds replacement state for `num_sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0`, or for [`ReplacementKind::TreePlru`] when
    /// `ways` is not a power of two.
    pub fn new(kind: ReplacementKind, num_sets: u64, ways: usize) -> Self {
        assert!(ways > 0, "a set must have at least one way");
        let sets = num_sets as usize;
        match kind {
            ReplacementKind::Lru => PolicyTable::Lru {
                stamps: vec![0; sets * ways].into_boxed_slice(),
                clock: vec![0; sets].into_boxed_slice(),
            },
            ReplacementKind::Fifo => PolicyTable::Fifo {
                order: vec![0; sets * ways].into_boxed_slice(),
                clock: vec![0; sets].into_boxed_slice(),
            },
            ReplacementKind::Random { seed } => PolicyTable::Random {
                // The same per-set stream derivation the per-set
                // construction used, so victim sequences are unchanged.
                rngs: (0..num_sets)
                    .map(|set| {
                        SmallRng::seed_from_u64(seed ^ set.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                    })
                    .collect(),
            },
            ReplacementKind::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree PLRU requires power-of-two ways"
                );
                PolicyTable::TreePlru {
                    bits: vec![false; sets * ways.saturating_sub(1)].into_boxed_slice(),
                }
            }
        }
    }

    /// Records a hit on `way` of `set`.
    #[inline]
    pub fn touch(&mut self, set: usize, way: usize, ways: usize) {
        match self {
            PolicyTable::Lru { stamps, clock } => {
                clock[set] += 1;
                stamps[set * ways + way] = clock[set];
            }
            PolicyTable::Fifo { .. } => {} // FIFO ignores hits by definition.
            PolicyTable::Random { .. } => {}
            PolicyTable::TreePlru { bits } => plru_promote(bits, set, way, ways),
        }
    }

    /// Records that a new block was installed in `way` of `set`.
    #[inline]
    pub fn filled(&mut self, set: usize, way: usize, ways: usize) {
        match self {
            PolicyTable::Lru { stamps, clock } => {
                clock[set] += 1;
                stamps[set * ways + way] = clock[set];
            }
            PolicyTable::Fifo { order, clock } => {
                clock[set] += 1;
                order[set * ways + way] = clock[set];
            }
            PolicyTable::Random { .. } => {}
            PolicyTable::TreePlru { bits } => plru_promote(bits, set, way, ways),
        }
    }

    /// Chooses the way of `set` to evict. All ways are valid when this
    /// is called (the cache prefers invalid ways itself).
    #[inline]
    pub fn victim(&mut self, set: usize, ways: usize) -> usize {
        match self {
            PolicyTable::Lru { stamps, .. } => oldest(&stamps[set * ways..set * ways + ways]),
            PolicyTable::Fifo { order, .. } => oldest(&order[set * ways..set * ways + ways]),
            PolicyTable::Random { rngs } => rngs[set].gen_range(0..ways),
            PolicyTable::TreePlru { bits } => {
                if ways == 1 {
                    return 0;
                }
                let bits = &bits[set * (ways - 1)..(set + 1) * (ways - 1)];
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    let go_right = bits[node];
                    node = 2 * node + if go_right { 2 } else { 1 };
                    if go_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
        }
    }
}

/// Index of the minimum stamp (first index wins ties) — the shared
/// LRU/FIFO victim rule.
#[inline]
fn oldest(stamps: &[u64]) -> usize {
    let (way, _) = stamps
        .iter()
        .enumerate()
        .min_by_key(|&(_, stamp)| *stamp)
        .expect("at least one way");
    way
}

/// Walks from the root toward `way`, pointing every node away from it
/// (the [`TreePlru`] promote rule over one set's slice of the flat bit
/// array).
#[inline]
fn plru_promote(all_bits: &mut [bool], set: usize, way: usize, ways: usize) {
    if ways == 1 {
        return;
    }
    let bits = &mut all_bits[set * (ways - 1)..(set + 1) * (ways - 1)];
    let mut node = 0usize;
    let mut lo = 0usize;
    let mut hi = ways;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let goes_right = way >= mid;
        // Point toward the *other* subtree (the colder one).
        bits[node] = !goes_right;
        node = 2 * node + if goes_right { 2 } else { 1 };
        if goes_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = Lru::new(4);
        for w in 0..4 {
            p.filled(w);
        }
        p.touch(0);
        p.touch(2);
        assert_eq!(p.victim(), 1);
        p.touch(1);
        assert_eq!(p.victim(), 3);
        assert_eq!(p.ways(), 4);
    }

    #[test]
    fn lru_single_way() {
        let mut p = Lru::new(1);
        p.filled(0);
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut p = Fifo::new(4);
        for w in 0..4 {
            p.filled(w);
        }
        p.touch(0);
        p.touch(0);
        assert_eq!(p.victim(), 0, "way 0 is oldest despite hits");
        p.filled(0);
        assert_eq!(p.victim(), 1);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut a = RandomPolicy::new(4, 42);
        let mut b = RandomPolicy::new(4, 42);
        for _ in 0..100 {
            let v = a.victim();
            assert_eq!(v, b.victim());
            assert!(v < 4);
        }
    }

    #[test]
    fn random_different_seeds_diverge() {
        let mut a = RandomPolicy::new(8, 1);
        let mut b = RandomPolicy::new(8, 2);
        let same = (0..64).filter(|_| a.victim() == b.victim()).count();
        assert!(same < 64, "streams with different seeds should differ");
    }

    #[test]
    fn tree_plru_points_away_from_recent() {
        let mut p = TreePlru::new(4);
        // Touch ways 0..3 in order; way 0 becomes the coldest path.
        for w in 0..4 {
            p.touch(w);
        }
        assert_eq!(p.victim(), 0);
        p.touch(0);
        p.touch(1);
        // Left subtree is now hot; victim comes from the right.
        let v = p.victim();
        assert!(
            v == 2 || v == 3,
            "victim {v} should be in the right subtree"
        );
    }

    #[test]
    fn tree_plru_victim_never_most_recent() {
        let mut p = TreePlru::new(8);
        for w in 0..8 {
            p.touch(w);
            assert_ne!(p.victim(), w, "PLRU must not evict the MRU way");
        }
    }

    #[test]
    fn tree_plru_single_way() {
        let mut p = TreePlru::new(1);
        p.touch(0);
        assert_eq!(p.victim(), 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn tree_plru_rejects_non_power_of_two() {
        let _ = TreePlru::new(3);
    }

    #[test]
    fn kind_builds_matching_policy() {
        assert_eq!(ReplacementKind::Lru.build(4).ways(), 4);
        assert_eq!(ReplacementKind::Fifo.build(2).ways(), 2);
        assert_eq!(ReplacementKind::Random { seed: 7 }.build(8).ways(), 8);
        assert_eq!(ReplacementKind::TreePlru.build(4).ways(), 4);
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(ReplacementKind::Lru.to_string(), "lru");
        assert_eq!(ReplacementKind::Fifo.to_string(), "fifo");
        assert_eq!(ReplacementKind::Random { seed: 0 }.to_string(), "random");
        assert_eq!(ReplacementKind::TreePlru.to_string(), "tree-plru");
    }

    #[test]
    fn default_kind_is_lru() {
        assert_eq!(ReplacementKind::default(), ReplacementKind::Lru);
    }
}
