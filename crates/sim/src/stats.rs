//! Cache hit/miss statistics.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Hit/miss counters maintained by [`DataCache`](crate::DataCache).
///
/// These are the *functional* cache statistics (did the block reside in the
/// cache?). The paper's headline metric — SRAM-array access frequency under
/// RMW / WG / WG+RB — is counted separately by the controllers in
/// `cache8t-core`, because one functional access can cost zero, one, or two
/// array operations depending on the controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read lookups that hit.
    pub read_hits: u64,
    /// Read lookups that missed.
    pub read_misses: u64,
    /// Write lookups that hit.
    pub write_hits: u64,
    /// Write lookups that missed.
    pub write_misses: u64,
    /// Valid blocks evicted to make room for a fill.
    pub evictions: u64,
    /// Evictions of dirty blocks (data returned to the caller for
    /// write-back).
    pub dirty_evictions: u64,
    /// Word writes whose new value equalled the stored value (silent
    /// stores, per Lepak & Lipasti).
    pub silent_word_writes: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Total read lookups.
    #[inline]
    pub fn reads(&self) -> u64 {
        self.read_hits + self.read_misses
    }

    /// Total write lookups.
    #[inline]
    pub fn writes(&self) -> u64 {
        self.write_hits + self.write_misses
    }

    /// Total lookups of either kind.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Total misses of either kind.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss ratio over all accesses, or 0.0 if there were none.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses() as f64 / total as f64
        }
    }

    /// Miss rate over all accesses, or 0.0 if there were none.
    ///
    /// Alias of [`miss_ratio`](Self::miss_ratio) under the name most
    /// dashboards and the telemetry layer use; both are guaranteed to
    /// return 0.0 (not NaN) for empty statistics.
    #[inline]
    pub fn miss_rate(&self) -> f64 {
        self.miss_ratio()
    }

    /// Hit ratio over all accesses, or 0.0 if there were none.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            (total - self.misses()) as f64 / total as f64
        }
    }

    /// Verifies the arithmetic laws every well-formed counter set obeys:
    /// hits + misses = accesses (true by construction of the derived
    /// totals, checked against overflow), every eviction was caused by a
    /// miss, and dirty evictions are a subset of evictions. Returns a
    /// human-readable description of the first violated law.
    ///
    /// The differential conformance harness calls this on every scheme
    /// after replay; a violation means a controller corrupted its own
    /// bookkeeping even if all data values agree.
    pub fn check_conservation(&self) -> Result<(), String> {
        let hits = self
            .read_hits
            .checked_add(self.write_hits)
            .ok_or("hit counters overflow")?;
        let total = hits
            .checked_add(self.misses())
            .ok_or("access counters overflow")?;
        if total != self.accesses() {
            return Err(format!(
                "hits ({hits}) + misses ({}) != accesses ({})",
                self.misses(),
                self.accesses()
            ));
        }
        if self.evictions > self.misses() {
            return Err(format!(
                "evictions ({}) exceed misses ({}): an eviction without a fill",
                self.evictions,
                self.misses()
            ));
        }
        if self.dirty_evictions > self.evictions {
            return Err(format!(
                "dirty evictions ({}) exceed evictions ({})",
                self.dirty_evictions, self.evictions
            ));
        }
        Ok(())
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(mut self, rhs: CacheStats) -> CacheStats {
        self += rhs;
        self
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.read_hits += rhs.read_hits;
        self.read_misses += rhs.read_misses;
        self.write_hits += rhs.write_hits;
        self.write_misses += rhs.write_misses;
        self.evictions += rhs.evictions;
        self.dirty_evictions += rhs.dirty_evictions;
        self.silent_word_writes += rhs.silent_word_writes;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} (r {}/{} hit, w {}/{} hit), miss ratio {:.4}, evictions {} ({} dirty), silent word writes {}",
            self.accesses(),
            self.read_hits,
            self.reads(),
            self.write_hits,
            self.writes(),
            self.miss_ratio(),
            self.evictions,
            self.dirty_evictions,
            self.silent_word_writes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CacheStats {
        CacheStats {
            read_hits: 90,
            read_misses: 10,
            write_hits: 45,
            write_misses: 5,
            evictions: 12,
            dirty_evictions: 4,
            silent_word_writes: 20,
        }
    }

    #[test]
    fn derived_totals() {
        let s = sample();
        assert_eq!(s.reads(), 100);
        assert_eq!(s.writes(), 50);
        assert_eq!(s.accesses(), 150);
        assert_eq!(s.misses(), 15);
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_ratios() {
        let s = CacheStats::new();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn addition_is_fieldwise() {
        let s = sample() + sample();
        assert_eq!(s.read_hits, 180);
        assert_eq!(s.silent_word_writes, 40);
        assert_eq!(s.accesses(), 300);
    }

    #[test]
    fn miss_rate_matches_ratio_and_survives_empty() {
        let s = sample();
        assert_eq!(s.miss_rate(), s.miss_ratio());
        assert!((s.miss_rate() - 0.1).abs() < 1e-12);
        // Division by zero must yield 0.0, never NaN.
        let empty = CacheStats::new();
        assert_eq!(empty.miss_rate(), 0.0);
        assert!(!empty.miss_rate().is_nan());
    }

    #[test]
    fn add_and_add_assign_round_trip() {
        let a = sample();
        let b = CacheStats {
            read_hits: 1,
            read_misses: 2,
            write_hits: 3,
            write_misses: 4,
            evictions: 5,
            dirty_evictions: 6,
            silent_word_writes: 7,
        };
        let by_add = a + b;
        let mut by_assign = a;
        by_assign += b;
        assert_eq!(by_add, by_assign);
        // Identity and commutativity over the sample values.
        assert_eq!(a + CacheStats::new(), a);
        assert_eq!(a + b, b + a);
        assert_eq!(by_add.accesses(), a.accesses() + b.accesses());
    }

    #[test]
    fn conservation_laws_hold_for_well_formed_counters() {
        assert_eq!(sample().check_conservation(), Ok(()));
        assert_eq!(CacheStats::new().check_conservation(), Ok(()));
        // Evictions without misses: impossible, must be flagged.
        let phantom_eviction = CacheStats {
            evictions: 1,
            ..CacheStats::new()
        };
        assert!(phantom_eviction
            .check_conservation()
            .unwrap_err()
            .contains("eviction"));
        // More dirty evictions than evictions: corrupted bookkeeping.
        let bad_dirty = CacheStats {
            read_misses: 5,
            evictions: 2,
            dirty_evictions: 3,
            ..CacheStats::new()
        };
        assert!(bad_dirty
            .check_conservation()
            .unwrap_err()
            .contains("dirty"));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!sample().to_string().is_empty());
        assert!(!CacheStats::new().to_string().is_empty());
    }
}
