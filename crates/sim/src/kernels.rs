//! Straight-line, autovectorizable kernels over the SoA cache arrays.
//!
//! Replay is compute-bound (the streaming work made it memory-flat), and
//! profiles put the cycles in three tiny loops: the per-set tag search,
//! the word-granularity silent-write compare, and the masked merge the
//! coalescing buffer performs on deposit. Each of those was written as a
//! short early-exit loop, which defeats vectorization and costs a branch
//! per way/word. The kernels here are the branchless replacements: every
//! loop has a fixed trip count, no data-dependent exit, and only `u64`
//! lane operations — exactly the shape LLVM turns into SIMD compares.
//!
//! Semantics are identical to the loops they replace; the conform
//! lockstep suites gate that bit-for-bit.

/// Flag bit tested by [`find_way`]; mirrors the cache's `VALID` bit.
pub const VALID_MASK: u8 = 1 << 0;

/// Branchless multi-way tag probe: returns the lowest way whose flags
/// have `valid_mask` set and whose tag equals `tag`.
///
/// All ways are tested unconditionally (no early exit), accumulating a
/// hit bitmask; the answer is one `trailing_zeros`. For associativities
/// above 64 ways the kernel falls back to a scalar scan.
///
/// First-match semantics are preserved relative to an early-exit
/// `Iterator::find` because valid tags are unique within a set (the
/// cache's double-fill panic enforces this), so at most one way can hit;
/// the lowest-way tie-break matters only for the impossible duplicate
/// case and is kept identical anyway.
#[inline]
pub fn find_way(tags: &[u64], flags: &[u8], valid_mask: u8, tag: u64) -> Option<usize> {
    debug_assert_eq!(tags.len(), flags.len());
    let n = tags.len();
    if n > 64 {
        return (0..n).find(|&way| flags[way] & valid_mask != 0 && tags[way] == tag);
    }
    let mut hits = 0u64;
    for way in 0..n {
        let hit = (flags[way] & valid_mask != 0) & (tags[way] == tag);
        hits |= (hit as u64) << way;
    }
    if hits == 0 {
        None
    } else {
        Some(hits.trailing_zeros() as usize)
    }
}

/// Branchless first-clear scan: returns the lowest way whose flags do
/// *not* have `valid_mask` set (the first invalid line of a set).
#[inline]
pub fn first_clear(flags: &[u8], valid_mask: u8) -> Option<usize> {
    let n = flags.len();
    if n > 64 {
        return (0..n).find(|&way| flags[way] & valid_mask == 0);
    }
    let mut clear = 0u64;
    for (way, &f) in flags.iter().enumerate() {
        clear |= ((f & valid_mask == 0) as u64) << way;
    }
    if clear == 0 {
        None
    } else {
        Some(clear.trailing_zeros() as usize)
    }
}

/// Block-granularity silent-write compare: `true` iff any word differs.
///
/// XOR-OR reduction with no early exit — the whole block is compared in
/// straight-line code, which vectorizes where a `!=`-with-break loop
/// cannot. For the short blocks the paper studies (4–16 words) the
/// branchless form also wins scalar, because the compare never
/// mispredicts.
#[inline]
pub fn words_differ(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0u64;
    for i in 0..a.len() {
        acc |= a[i] ^ b[i];
    }
    acc != 0
}

/// Per-word difference bitmask: bit `i` is set iff `a[i] != b[i]`.
///
/// Supports blocks up to 64 words (32 KB lines — far beyond the paper's
/// sweep range).
#[inline]
pub fn diff_mask(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len() <= 64, "diff_mask supports at most 64 words");
    let mut mask = 0u64;
    for i in 0..a.len() {
        mask |= ((a[i] != b[i]) as u64) << i;
    }
    mask
}

/// Masked merge for write-buffer deposit: for every word, keep
/// `merged[i]` where `valid[i]` is set, otherwise take `stored[i]`.
/// Returns `true` iff any *valid* word differed from the stored copy —
/// i.e. whether the deposit actually changes the array, which is what
/// decides silent-write-back elision in the coalescing controller.
///
/// Branchless select per lane; the changed-detection is the same XOR-OR
/// reduction as [`words_differ`], masked to the valid lanes.
#[inline]
pub fn merge_masked(merged: &mut [u64], stored: &[u64], valid: &[bool]) -> bool {
    debug_assert_eq!(merged.len(), stored.len());
    debug_assert_eq!(merged.len(), valid.len());
    let mut acc = 0u64;
    for i in 0..merged.len() {
        let keep = valid[i];
        let s = stored[i];
        acc |= if keep { merged[i] ^ s } else { 0 };
        merged[i] = if keep { merged[i] } else { s };
    }
    acc != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The early-exit scan `find_way` replaces, used as the oracle.
    fn find_way_scalar(tags: &[u64], flags: &[u8], mask: u8, tag: u64) -> Option<usize> {
        (0..tags.len()).find(|&w| flags[w] & mask != 0 && tags[w] == tag)
    }

    #[test]
    fn find_way_matches_scalar_scan() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for ways in [1usize, 2, 4, 8, 16, 64] {
            for _ in 0..200 {
                let tags: Vec<u64> = (0..ways).map(|_| next() % 8).collect();
                let flags: Vec<u8> = (0..ways).map(|_| (next() & 1) as u8).collect();
                let tag = next() % 8;
                assert_eq!(
                    find_way(&tags, &flags, VALID_MASK, tag),
                    find_way_scalar(&tags, &flags, VALID_MASK, tag),
                    "ways={ways} tags={tags:?} flags={flags:?} tag={tag}"
                );
            }
        }
    }

    #[test]
    fn find_way_prefers_lowest_way() {
        // Duplicate valid tags cannot occur in the cache, but the kernel
        // still picks the lowest way like the scan it replaced.
        let tags = [5u64, 5, 5, 5];
        let flags = [0u8, 1, 0, 1];
        assert_eq!(find_way(&tags, &flags, VALID_MASK, 5), Some(1));
    }

    #[test]
    fn first_clear_matches_scan() {
        for pattern in 0u8..16 {
            let flags: Vec<u8> = (0..4).map(|w| (pattern >> w) & 1).collect();
            let expected = (0..4).find(|&w| flags[w] & VALID_MASK == 0);
            assert_eq!(first_clear(&flags, VALID_MASK), expected, "{flags:?}");
        }
    }

    #[test]
    fn words_differ_and_diff_mask_agree() {
        let a = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut b = a;
        assert!(!words_differ(&a, &b));
        assert_eq!(diff_mask(&a, &b), 0);
        b[2] = 9;
        b[7] = 0;
        assert!(words_differ(&a, &b));
        assert_eq!(diff_mask(&a, &b), (1 << 2) | (1 << 7));
    }

    #[test]
    fn merge_masked_selects_and_detects_change() {
        let stored = [10u64, 20, 30, 40];
        // All-invalid: merged becomes the stored copy, nothing changed.
        let mut merged = [1u64, 2, 3, 4];
        assert!(!merge_masked(&mut merged, &stored, &[false; 4]));
        assert_eq!(merged, stored);
        // Valid-but-equal words are silent.
        let mut merged = [10u64, 0, 30, 0];
        assert!(!merge_masked(
            &mut merged,
            &stored,
            &[true, false, true, false]
        ));
        assert_eq!(merged, stored);
        // A valid word that differs flips the changed bit and survives.
        let mut merged = [11u64, 0, 30, 0];
        assert!(merge_masked(
            &mut merged,
            &stored,
            &[true, false, true, false]
        ));
        assert_eq!(merged, [11, 20, 30, 40]);
    }
}
