//! Sparse backing memory.

use crate::geometry::WORD_BYTES;
use crate::hash::FastMap;
use crate::Address;

/// A sparse, lazily zero-filled main memory holding 64-bit words at block
/// granularity.
///
/// The cache simulator needs a data source for miss fills and a sink for
/// write-backs; `MainMemory` provides both. Untouched memory reads as zero,
/// which matches the silent-write convention the paper inherits from Lepak &
/// Lipasti: a store of `0` to a never-written location is silent.
///
/// Blocks are stored as `Box<[u64]>` and the borrowing accessors
/// ([`read_block_ref`](Self::read_block_ref),
/// [`read_block_into`](Self::read_block_into),
/// [`write_block_from`](Self::write_block_from)) keep the miss-fill and
/// write-back paths allocation-free: a cold read borrows one shared
/// zero block instead of materializing a fresh `Vec`, and a write-back
/// into an existing block copies in place.
///
/// # Example
///
/// ```
/// use cache8t_sim::{Address, MainMemory};
///
/// let mut mem = MainMemory::new(32);
/// assert_eq!(mem.read_word(Address::new(0x40)), 0);
/// mem.write_word(Address::new(0x40), 7);
/// assert_eq!(mem.read_word(Address::new(0x40)), 7);
/// assert_eq!(mem.read_block_ref(Address::new(0x40)), &[7, 0, 0, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct MainMemory {
    block_bytes: u64,
    block_words: usize,
    blocks: FastMap<u64, Box<[u64]>>,
    /// Shared backing for reads of untouched blocks.
    zero_block: Box<[u64]>,
}

impl MainMemory {
    /// Creates an empty (all-zero) memory with the given block size in
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power-of-two multiple of 8.
    pub fn new(block_bytes: u64) -> Self {
        assert!(
            block_bytes >= WORD_BYTES && block_bytes.is_power_of_two(),
            "block size must be a power-of-two multiple of {WORD_BYTES} bytes"
        );
        let block_words = (block_bytes / WORD_BYTES) as usize;
        MainMemory {
            block_bytes,
            block_words,
            blocks: FastMap::default(),
            zero_block: vec![0; block_words].into_boxed_slice(),
        }
    }

    /// Block size in bytes.
    #[inline]
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Number of blocks that have ever been written (the memory footprint).
    #[inline]
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn block_base(&self, addr: Address) -> u64 {
        addr.raw() & !(self.block_bytes - 1)
    }

    fn word_index(&self, addr: Address) -> usize {
        ((addr.raw() & (self.block_bytes - 1)) / WORD_BYTES) as usize
    }

    /// Borrows the whole block containing `addr` without copying; an
    /// untouched block borrows a shared all-zero block.
    #[inline]
    pub fn read_block_ref(&self, addr: Address) -> &[u64] {
        let base = self.block_base(addr);
        match self.blocks.get(&base) {
            Some(block) => block,
            None => &self.zero_block,
        }
    }

    /// Reads the whole block containing `addr` (zero-filled if untouched).
    ///
    /// Allocates the returned `Vec`; the hot paths use
    /// [`read_block_ref`](Self::read_block_ref) or
    /// [`read_block_into`](Self::read_block_into) instead.
    pub fn read_block(&self, addr: Address) -> Vec<u64> {
        self.read_block_ref(addr).to_vec()
    }

    /// Copies the whole block containing `addr` into `dst` (zeros if
    /// untouched).
    ///
    /// # Panics
    ///
    /// Panics if `dst.len()` does not equal the block size in words.
    pub fn read_block_into(&self, addr: Address, dst: &mut [u64]) {
        assert_eq!(
            dst.len(),
            self.block_words,
            "block buffer must be exactly {} words",
            self.block_words
        );
        dst.copy_from_slice(self.read_block_ref(addr));
    }

    /// Overwrites the whole block containing `addr` from a borrowed
    /// slice, copying in place when the block already exists.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the block size in words.
    pub fn write_block_from(&mut self, addr: Address, data: &[u64]) {
        assert_eq!(
            data.len(),
            self.block_words,
            "block data must be exactly {} words",
            self.block_words
        );
        let base = self.block_base(addr);
        match self.blocks.get_mut(&base) {
            Some(block) => block.copy_from_slice(data),
            None => {
                self.blocks.insert(base, data.into());
            }
        }
    }

    /// Overwrites the whole block containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the block size in words.
    pub fn write_block(&mut self, addr: Address, data: Vec<u64>) {
        assert_eq!(
            data.len(),
            self.block_words,
            "block data must be exactly {} words",
            self.block_words
        );
        let base = self.block_base(addr);
        self.blocks.insert(base, data.into_boxed_slice());
    }

    /// Reads the aligned 64-bit word containing `addr`.
    pub fn read_word(&self, addr: Address) -> u64 {
        let base = self.block_base(addr);
        match self.blocks.get(&base) {
            Some(block) => block[self.word_index(addr)],
            None => 0,
        }
    }

    /// Writes the aligned 64-bit word containing `addr`, materializing the
    /// block if needed.
    pub fn write_word(&mut self, addr: Address, value: u64) {
        let base = self.block_base(addr);
        let idx = self.word_index(addr);
        let words = self.block_words;
        let block = self
            .blocks
            .entry(base)
            .or_insert_with(|| vec![0; words].into_boxed_slice());
        block[idx] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = MainMemory::new(32);
        assert_eq!(mem.read_word(Address::new(0)), 0);
        assert_eq!(mem.read_word(Address::new(0xffff_fff8)), 0);
        assert_eq!(mem.read_block(Address::new(0x123000)), vec![0; 4]);
        assert_eq!(mem.read_block_ref(Address::new(0x123000)), &[0; 4]);
        assert_eq!(mem.resident_blocks(), 0);
    }

    #[test]
    fn word_writes_land_in_the_right_slot() {
        let mut mem = MainMemory::new(32);
        mem.write_word(Address::new(0x100), 1);
        mem.write_word(Address::new(0x108), 2);
        mem.write_word(Address::new(0x118), 4);
        assert_eq!(mem.read_block(Address::new(0x100)), vec![1, 2, 0, 4]);
        assert_eq!(mem.resident_blocks(), 1);
    }

    #[test]
    fn unaligned_word_access_uses_containing_word() {
        let mut mem = MainMemory::new(32);
        mem.write_word(Address::new(0x105), 9); // within word 0 of block 0x100
        assert_eq!(mem.read_word(Address::new(0x100)), 9);
        assert_eq!(mem.read_word(Address::new(0x107)), 9);
    }

    #[test]
    fn block_write_replaces_contents() {
        let mut mem = MainMemory::new(32);
        mem.write_word(Address::new(0x40), 5);
        mem.write_block(Address::new(0x47), vec![10, 11, 12, 13]);
        assert_eq!(mem.read_word(Address::new(0x40)), 10);
        assert_eq!(mem.read_word(Address::new(0x58)), 13);
    }

    #[test]
    fn block_write_from_slice_copies_in_place() {
        let mut mem = MainMemory::new(32);
        mem.write_block_from(Address::new(0x40), &[1, 2, 3, 4]);
        assert_eq!(mem.read_block_ref(Address::new(0x40)), &[1, 2, 3, 4]);
        mem.write_block_from(Address::new(0x40), &[5, 6, 7, 8]);
        assert_eq!(mem.read_block_ref(Address::new(0x40)), &[5, 6, 7, 8]);
        assert_eq!(mem.resident_blocks(), 1);
    }

    #[test]
    fn block_read_into_copies_and_zero_fills() {
        let mut mem = MainMemory::new(32);
        let mut buf = vec![99; 4];
        mem.read_block_into(Address::new(0x40), &mut buf);
        assert_eq!(buf, vec![0; 4], "untouched block reads zero");
        mem.write_word(Address::new(0x48), 7);
        mem.read_block_into(Address::new(0x40), &mut buf);
        assert_eq!(buf, vec![0, 7, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "exactly 4 words")]
    fn block_write_rejects_wrong_size() {
        let mut mem = MainMemory::new(32);
        mem.write_block(Address::new(0), vec![0; 3]);
    }

    #[test]
    #[should_panic(expected = "exactly 4 words")]
    fn block_read_into_rejects_wrong_size() {
        let mem = MainMemory::new(32);
        let mut buf = vec![0; 3];
        mem.read_block_into(Address::new(0), &mut buf);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_bad_block_size() {
        let _ = MainMemory::new(12);
    }

    #[test]
    fn different_blocks_are_independent() {
        let mut mem = MainMemory::new(64);
        mem.write_word(Address::new(0x0), 1);
        mem.write_word(Address::new(0x40), 2);
        assert_eq!(mem.read_word(Address::new(0x0)), 1);
        assert_eq!(mem.read_word(Address::new(0x40)), 2);
        assert_eq!(mem.resident_blocks(), 2);
    }
}
