//! Sparse backing memory.

use std::collections::HashMap;

use crate::geometry::WORD_BYTES;
use crate::Address;

/// A sparse, lazily zero-filled main memory holding 64-bit words at block
/// granularity.
///
/// The cache simulator needs a data source for miss fills and a sink for
/// write-backs; `MainMemory` provides both. Untouched memory reads as zero,
/// which matches the silent-write convention the paper inherits from Lepak &
/// Lipasti: a store of `0` to a never-written location is silent.
///
/// # Example
///
/// ```
/// use cache8t_sim::{Address, MainMemory};
///
/// let mut mem = MainMemory::new(32);
/// assert_eq!(mem.read_word(Address::new(0x40)), 0);
/// mem.write_word(Address::new(0x40), 7);
/// assert_eq!(mem.read_word(Address::new(0x40)), 7);
/// assert_eq!(mem.read_block(Address::new(0x40)), vec![7, 0, 0, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct MainMemory {
    block_bytes: u64,
    block_words: usize,
    blocks: HashMap<u64, Vec<u64>>,
}

impl MainMemory {
    /// Creates an empty (all-zero) memory with the given block size in
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power-of-two multiple of 8.
    pub fn new(block_bytes: u64) -> Self {
        assert!(
            block_bytes >= WORD_BYTES && block_bytes.is_power_of_two(),
            "block size must be a power-of-two multiple of {WORD_BYTES} bytes"
        );
        MainMemory {
            block_bytes,
            block_words: (block_bytes / WORD_BYTES) as usize,
            blocks: HashMap::new(),
        }
    }

    /// Block size in bytes.
    #[inline]
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Number of blocks that have ever been written (the memory footprint).
    #[inline]
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn block_base(&self, addr: Address) -> u64 {
        addr.raw() & !(self.block_bytes - 1)
    }

    fn word_index(&self, addr: Address) -> usize {
        ((addr.raw() & (self.block_bytes - 1)) / WORD_BYTES) as usize
    }

    /// Reads the whole block containing `addr` (zero-filled if untouched).
    pub fn read_block(&self, addr: Address) -> Vec<u64> {
        let base = self.block_base(addr);
        self.blocks
            .get(&base)
            .cloned()
            .unwrap_or_else(|| vec![0; self.block_words])
    }

    /// Overwrites the whole block containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the block size in words.
    pub fn write_block(&mut self, addr: Address, data: Vec<u64>) {
        assert_eq!(
            data.len(),
            self.block_words,
            "block data must be exactly {} words",
            self.block_words
        );
        let base = self.block_base(addr);
        self.blocks.insert(base, data);
    }

    /// Reads the aligned 64-bit word containing `addr`.
    pub fn read_word(&self, addr: Address) -> u64 {
        let base = self.block_base(addr);
        match self.blocks.get(&base) {
            Some(block) => block[self.word_index(addr)],
            None => 0,
        }
    }

    /// Writes the aligned 64-bit word containing `addr`, materializing the
    /// block if needed.
    pub fn write_word(&mut self, addr: Address, value: u64) {
        let base = self.block_base(addr);
        let idx = self.word_index(addr);
        let words = self.block_words;
        let block = self.blocks.entry(base).or_insert_with(|| vec![0; words]);
        block[idx] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = MainMemory::new(32);
        assert_eq!(mem.read_word(Address::new(0)), 0);
        assert_eq!(mem.read_word(Address::new(0xffff_fff8)), 0);
        assert_eq!(mem.read_block(Address::new(0x123000)), vec![0; 4]);
        assert_eq!(mem.resident_blocks(), 0);
    }

    #[test]
    fn word_writes_land_in_the_right_slot() {
        let mut mem = MainMemory::new(32);
        mem.write_word(Address::new(0x100), 1);
        mem.write_word(Address::new(0x108), 2);
        mem.write_word(Address::new(0x118), 4);
        assert_eq!(mem.read_block(Address::new(0x100)), vec![1, 2, 0, 4]);
        assert_eq!(mem.resident_blocks(), 1);
    }

    #[test]
    fn unaligned_word_access_uses_containing_word() {
        let mut mem = MainMemory::new(32);
        mem.write_word(Address::new(0x105), 9); // within word 0 of block 0x100
        assert_eq!(mem.read_word(Address::new(0x100)), 9);
        assert_eq!(mem.read_word(Address::new(0x107)), 9);
    }

    #[test]
    fn block_write_replaces_contents() {
        let mut mem = MainMemory::new(32);
        mem.write_word(Address::new(0x40), 5);
        mem.write_block(Address::new(0x47), vec![10, 11, 12, 13]);
        assert_eq!(mem.read_word(Address::new(0x40)), 10);
        assert_eq!(mem.read_word(Address::new(0x58)), 13);
    }

    #[test]
    #[should_panic(expected = "exactly 4 words")]
    fn block_write_rejects_wrong_size() {
        let mut mem = MainMemory::new(32);
        mem.write_block(Address::new(0), vec![0; 3]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_bad_block_size() {
        let _ = MainMemory::new(12);
    }

    #[test]
    fn different_blocks_are_independent() {
        let mut mem = MainMemory::new(64);
        mem.write_word(Address::new(0x0), 1);
        mem.write_word(Address::new(0x40), 2);
        assert_eq!(mem.read_word(Address::new(0x0)), 1);
        assert_eq!(mem.read_word(Address::new(0x40)), 2);
        assert_eq!(mem.resident_blocks(), 2);
    }
}
