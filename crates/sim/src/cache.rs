//! The value-carrying set-associative data cache.

use std::fmt;

use crate::replacement::{ReplacementKind, ReplacementPolicy};
use crate::{Address, CacheGeometry, CacheStats};

/// One cache block: tag, state bits, and the stored 64-bit words.
///
/// Carrying real data is what lets the workspace implement the paper's
/// silent-write detection (§4.1): the Set-Buffer compares the value being
/// written against the value already present.
#[derive(Debug, Clone)]
pub struct CacheLine {
    tag: u64,
    valid: bool,
    dirty: bool,
    data: Vec<u64>,
}

impl CacheLine {
    fn invalid(block_words: usize) -> Self {
        CacheLine {
            tag: 0,
            valid: false,
            dirty: false,
            data: vec![0; block_words],
        }
    }

    /// The block's tag (meaningless unless [`is_valid`](Self::is_valid)).
    #[inline]
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// `true` if the line holds a block.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// `true` if the block has been modified since it was filled.
    #[inline]
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// The stored words.
    #[inline]
    pub fn data(&self) -> &[u64] {
        &self.data
    }
}

/// One set: `ways` lines plus replacement state.
pub struct CacheSet {
    lines: Vec<CacheLine>,
    policy: Box<dyn ReplacementPolicy>,
}

impl CacheSet {
    fn new(ways: usize, block_words: usize, kind: ReplacementKind, set_index: u64) -> Self {
        // Derive a distinct stream per set for the Random policy so sets do
        // not evict in lockstep.
        let kind = match kind {
            ReplacementKind::Random { seed } => ReplacementKind::Random {
                seed: seed ^ set_index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            },
            other => other,
        };
        CacheSet {
            lines: (0..ways).map(|_| CacheLine::invalid(block_words)).collect(),
            policy: kind.build(ways),
        }
    }

    /// The lines of this set, in way order.
    #[inline]
    pub fn lines(&self) -> &[CacheLine] {
        &self.lines
    }

    /// Returns the way holding `tag`, if any.
    pub fn find(&self, tag: u64) -> Option<usize> {
        self.lines.iter().position(|l| l.valid && l.tag == tag)
    }

    fn first_invalid(&self) -> Option<usize> {
        self.lines.iter().position(|l| !l.valid)
    }
}

impl fmt::Debug for CacheSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheSet")
            .field("lines", &self.lines)
            .field("policy_ways", &self.policy.ways())
            .finish()
    }
}

/// Result of writing a word that hit in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEffect {
    /// The value the word held before the write.
    pub old_value: u64,
    /// `true` if the new value equalled the old one (a silent store).
    pub was_silent: bool,
}

/// A valid block displaced by [`DataCache::fill`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine {
    /// Base address of the evicted block.
    pub base: Address,
    /// The block's words at eviction time.
    pub data: Vec<u64>,
    /// `true` if the block was dirty and must be written back to memory.
    pub dirty: bool,
}

/// Result of installing a block with [`DataCache::fill`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillOutcome {
    /// The way the block was installed into.
    pub way: usize,
    /// The valid block that was displaced, if the set was full.
    pub evicted: Option<EvictedLine>,
}

/// A set-associative, write-back, value-carrying data cache.
///
/// `DataCache` is purely *functional*: it answers hit/miss, stores data, and
/// applies a replacement policy. It deliberately does **not** model SRAM
/// array traffic — that is the job of the controllers in `cache8t-core`,
/// because the same functional access costs different numbers of array
/// operations under RMW, WG, and WG+RB.
///
/// # Example
///
/// ```
/// use cache8t_sim::{Address, CacheGeometry, DataCache, MainMemory, ReplacementKind};
///
/// # fn main() -> Result<(), cache8t_sim::GeometryError> {
/// let g = CacheGeometry::new(1024, 2, 32)?;
/// let mut cache = DataCache::new(g, ReplacementKind::Lru);
/// let mut mem = MainMemory::new(g.block_bytes());
///
/// let a = Address::new(0x200);
/// assert_eq!(cache.read_word(a), None); // miss
/// cache.fill(a, mem.read_block(a));
/// assert_eq!(cache.read_word(a), Some(0));
/// let effect = cache.write_word(a, 42).expect("hit after fill");
/// assert!(!effect.was_silent);
/// assert_eq!(cache.read_word(a), Some(42));
/// # Ok(())
/// # }
/// ```
pub struct DataCache {
    geometry: CacheGeometry,
    sets: Vec<CacheSet>,
    stats: CacheStats,
}

impl DataCache {
    /// Creates an empty cache with the given geometry and replacement
    /// policy.
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind) -> Self {
        let ways = geometry.ways() as usize;
        let block_words = geometry.block_words();
        let sets = (0..geometry.num_sets())
            .map(|i| CacheSet::new(ways, block_words, replacement, i))
            .collect();
        DataCache {
            geometry,
            sets,
            stats: CacheStats::new(),
        }
    }

    /// The cache's geometry.
    #[inline]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Accumulated hit/miss statistics.
    #[inline]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics to zero (used after warm-up, mirroring the paper's
    /// 1 B-instruction cache warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    /// The set that `addr` maps to.
    pub fn set_of(&self, addr: Address) -> &CacheSet {
        &self.sets[self.geometry.set_index_of(addr) as usize]
    }

    /// The set at `set_index`.
    ///
    /// # Panics
    ///
    /// Panics if `set_index >= num_sets`.
    pub fn set(&self, set_index: u64) -> &CacheSet {
        &self.sets[set_index as usize]
    }

    /// Looks up `addr` without any side effects (no statistics, no
    /// replacement update). Returns the hit way.
    pub fn probe(&self, addr: Address) -> Option<usize> {
        let tag = self.geometry.tag_of(addr);
        self.set_of(addr).find(tag)
    }

    /// Touches the replacement state for `addr` if it is resident, without
    /// reading data or updating statistics.
    ///
    /// The WG/WG+RB controllers use this when a request is served from the
    /// Set-Buffer: the block logically *was* accessed, so replacement
    /// recency must advance exactly as it would in the baseline cache —
    /// otherwise the techniques would change miss rates, which the paper's
    /// techniques do not.
    pub fn touch(&mut self, addr: Address) -> Option<usize> {
        let set_idx = self.geometry.set_index_of(addr) as usize;
        let tag = self.geometry.tag_of(addr);
        let set = &mut self.sets[set_idx];
        let way = set.find(tag)?;
        set.policy.touch(way);
        Some(way)
    }

    /// Reads the aligned word containing `addr`.
    ///
    /// On a hit the replacement state is touched and `Some(value)` is
    /// returned; on a miss, `None`. Statistics are updated either way.
    pub fn read_word(&mut self, addr: Address) -> Option<u64> {
        let set_idx = self.geometry.set_index_of(addr) as usize;
        let tag = self.geometry.tag_of(addr);
        let word = self.geometry.word_offset_of(addr);
        let set = &mut self.sets[set_idx];
        match set.find(tag) {
            Some(way) => {
                set.policy.touch(way);
                self.stats.read_hits += 1;
                Some(set.lines[way].data[word])
            }
            None => {
                self.stats.read_misses += 1;
                None
            }
        }
    }

    /// Writes the aligned word containing `addr`.
    ///
    /// On a hit the word is updated, the line marked dirty, the replacement
    /// state touched, and the [`WriteEffect`] (including silence) returned;
    /// on a miss, `None`. Statistics are updated either way.
    ///
    /// Note that the *functional* cache marks the line dirty even for silent
    /// writes; suppressing silent write-backs is the WG controller's
    /// optimization, not a property of the underlying cache.
    pub fn write_word(&mut self, addr: Address, value: u64) -> Option<WriteEffect> {
        let set_idx = self.geometry.set_index_of(addr) as usize;
        let tag = self.geometry.tag_of(addr);
        let word = self.geometry.word_offset_of(addr);
        let set = &mut self.sets[set_idx];
        match set.find(tag) {
            Some(way) => {
                set.policy.touch(way);
                let line = &mut set.lines[way];
                let old_value = line.data[word];
                let was_silent = old_value == value;
                line.data[word] = value;
                line.dirty = true;
                self.stats.write_hits += 1;
                if was_silent {
                    self.stats.silent_word_writes += 1;
                }
                Some(WriteEffect {
                    old_value,
                    was_silent,
                })
            }
            None => {
                self.stats.write_misses += 1;
                None
            }
        }
    }

    /// Installs the block containing `addr`, evicting a victim if the set is
    /// full.
    ///
    /// The installed line is clean; callers that fill-then-write (write
    /// allocation) will dirty it through [`write_word`](Self::write_word).
    /// Does not touch hit/miss statistics — the lookup that discovered the
    /// miss already counted it — but does count evictions.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the block size in words, or if
    /// the block is already present (double fill indicates a controller
    /// bug).
    pub fn fill(&mut self, addr: Address, data: Vec<u64>) -> FillOutcome {
        assert_eq!(
            data.len(),
            self.geometry.block_words(),
            "fill data must be exactly one block"
        );
        let set_idx = self.geometry.set_index_of(addr);
        let tag = self.geometry.tag_of(addr);
        let set = &mut self.sets[set_idx as usize];
        assert!(
            set.find(tag).is_none(),
            "block {addr} is already resident; double fill"
        );
        let (way, evicted) = match set.first_invalid() {
            Some(way) => (way, None),
            None => {
                let way = set.policy.victim();
                let line = &set.lines[way];
                let base = self.geometry.block_base_from_parts(line.tag, set_idx);
                self.stats.evictions += 1;
                if line.dirty {
                    self.stats.dirty_evictions += 1;
                }
                (
                    way,
                    Some(EvictedLine {
                        base,
                        data: line.data.clone(),
                        dirty: line.dirty,
                    }),
                )
            }
        };
        let line = &mut set.lines[way];
        line.tag = tag;
        line.valid = true;
        line.dirty = false;
        line.data = data;
        set.policy.filled(way);
        FillOutcome { way, evicted }
    }

    /// Overwrites the data (and dirty bit) of a resident line.
    ///
    /// This is the primitive behind the WG controller's Set-Buffer
    /// write-back: the buffered, modified copy of each block is deposited
    /// back into the array.
    ///
    /// # Panics
    ///
    /// Panics if the way is invalid or `data` is not exactly one block.
    pub fn update_block(&mut self, set_index: u64, way: usize, data: &[u64], dirty: bool) {
        assert_eq!(data.len(), self.geometry.block_words());
        let line = &mut self.sets[set_index as usize].lines[way];
        assert!(line.valid, "cannot update an invalid line");
        line.data.copy_from_slice(data);
        line.dirty = dirty;
    }

    /// Marks a resident line clean (after its data has been written back to
    /// memory).
    ///
    /// # Panics
    ///
    /// Panics if the way is invalid.
    pub fn mark_clean(&mut self, set_index: u64, way: usize) {
        let line = &mut self.sets[set_index as usize].lines[way];
        assert!(line.valid, "cannot clean an invalid line");
        line.dirty = false;
    }

    /// Iterates over `(set_index, way, line)` for every valid line.
    pub fn iter_valid_lines(&self) -> impl Iterator<Item = (u64, usize, &CacheLine)> + '_ {
        self.sets.iter().enumerate().flat_map(|(si, set)| {
            set.lines
                .iter()
                .enumerate()
                .filter(|(_, l)| l.valid)
                .map(move |(w, l)| (si as u64, w, l))
        })
    }

    /// Number of valid lines currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.iter_valid_lines().count()
    }
}

impl fmt::Debug for DataCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DataCache")
            .field("geometry", &self.geometry)
            .field("resident_blocks", &self.resident_blocks())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MainMemory;

    fn small_cache() -> DataCache {
        // 2 sets, 2 ways, 32 B blocks.
        DataCache::new(
            CacheGeometry::new(128, 2, 32).unwrap(),
            ReplacementKind::Lru,
        )
    }

    #[test]
    fn cold_cache_misses_everything() {
        let mut c = small_cache();
        assert_eq!(c.read_word(Address::new(0)), None);
        assert_eq!(c.write_word(Address::new(0x20), 1), None);
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().write_misses, 1);
        assert_eq!(c.resident_blocks(), 0);
    }

    #[test]
    fn fill_then_hit() {
        let mut c = small_cache();
        let a = Address::new(0x40);
        c.fill(a, vec![7, 8, 9, 10]);
        assert_eq!(c.read_word(a), Some(7));
        assert_eq!(c.read_word(a.offset(8)), Some(8));
        assert_eq!(c.read_word(a.offset(24)), Some(10));
        assert_eq!(c.stats().read_hits, 3);
    }

    #[test]
    fn write_detects_silence() {
        let mut c = small_cache();
        let a = Address::new(0x40);
        c.fill(a, vec![7, 0, 0, 0]);
        let e = c.write_word(a, 7).unwrap();
        assert!(e.was_silent);
        assert_eq!(e.old_value, 7);
        let e = c.write_word(a, 8).unwrap();
        assert!(!e.was_silent);
        assert_eq!(e.old_value, 7);
        assert_eq!(c.stats().silent_word_writes, 1);
    }

    #[test]
    fn write_marks_dirty_even_when_silent() {
        let mut c = small_cache();
        let a = Address::new(0x40);
        c.fill(a, vec![7, 0, 0, 0]);
        c.write_word(a, 7).unwrap();
        let way = c.probe(a).unwrap();
        let set = c.geometry().set_index_of(a);
        assert!(c.set(set).lines()[way].is_dirty());
    }

    #[test]
    fn eviction_returns_dirty_victim() {
        let mut c = small_cache();
        // Set 0 holds blocks whose addresses have bit 5 clear (offset_bits=5,
        // 2 sets -> index bit is bit 5).
        let a = Address::new(0x000); // set 0
        let b = Address::new(0x080); // set 0 (0x80 >> 5 = 4, & 1 = 0)
        let d = Address::new(0x100); // set 0
        c.fill(a, vec![1, 0, 0, 0]);
        c.fill(b, vec![2, 0, 0, 0]);
        c.write_word(a, 5).unwrap(); // dirty a, and make it MRU
        let out = c.fill(d, vec![3, 0, 0, 0]);
        let ev = out.evicted.expect("set was full");
        assert_eq!(ev.base, b, "LRU victim is b");
        assert!(!ev.dirty);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().dirty_evictions, 0);
        // Now evict the dirty block a.
        let e = Address::new(0x180);
        let out = c.fill(e, vec![4, 0, 0, 0]);
        let ev = out.evicted.expect("set full again");
        assert_eq!(ev.base, a);
        assert!(ev.dirty);
        assert_eq!(ev.data, vec![5, 0, 0, 0]);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    #[should_panic(expected = "double fill")]
    fn double_fill_panics() {
        let mut c = small_cache();
        c.fill(Address::new(0x40), vec![0; 4]);
        c.fill(Address::new(0x47), vec![0; 4]); // same block
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut c = small_cache();
        let a = Address::new(0x40);
        c.fill(a, vec![0; 4]);
        let before = *c.stats();
        assert!(c.probe(a).is_some());
        assert!(c.probe(Address::new(0x60)).is_none());
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn update_block_replaces_data_and_dirty() {
        let mut c = small_cache();
        let a = Address::new(0x40);
        c.fill(a, vec![0; 4]);
        let set = c.geometry().set_index_of(a);
        let way = c.probe(a).unwrap();
        c.update_block(set, way, &[9, 9, 9, 9], true);
        assert_eq!(c.read_word(a), Some(9));
        assert!(c.set(set).lines()[way].is_dirty());
        c.mark_clean(set, way);
        assert!(!c.set(set).lines()[way].is_dirty());
    }

    #[test]
    fn works_with_backing_memory_roundtrip() {
        let g = CacheGeometry::new(128, 2, 32).unwrap();
        let mut c = DataCache::new(g, ReplacementKind::Lru);
        let mut mem = MainMemory::new(32);
        mem.write_word(Address::new(0x40), 77);
        let a = Address::new(0x40);
        c.fill(a, mem.read_block(a));
        assert_eq!(c.read_word(a), Some(77));
        c.write_word(a, 78).unwrap();
        // Evict everything in set of a by filling conflicting blocks.
        let mut evicted_data = None;
        for i in 1..=2 {
            let out = c.fill(
                Address::new(0x40 + i * 0x80),
                mem.read_block(Address::new(0x40 + i * 0x80)),
            );
            if let Some(ev) = out.evicted {
                if ev.base == Address::new(0x40) {
                    evicted_data = Some(ev);
                }
            }
        }
        let ev = evicted_data.expect("a was evicted");
        assert!(ev.dirty);
        mem.write_block(ev.base, ev.data);
        assert_eq!(mem.read_word(Address::new(0x40)), 78);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut c = small_cache();
        c.read_word(Address::new(0));
        assert_ne!(c.stats().accesses(), 0);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn iter_valid_lines_sees_all_fills() {
        let mut c = small_cache();
        c.fill(Address::new(0x00), vec![0; 4]);
        c.fill(Address::new(0x20), vec![0; 4]);
        c.fill(Address::new(0x80), vec![0; 4]);
        assert_eq!(c.resident_blocks(), 3);
        let sets: Vec<u64> = c.iter_valid_lines().map(|(s, _, _)| s).collect();
        assert_eq!(sets.iter().filter(|&&s| s == 0).count(), 2);
        assert_eq!(sets.iter().filter(|&&s| s == 1).count(), 1);
    }
}
