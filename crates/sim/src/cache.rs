//! The value-carrying set-associative data cache.
//!
//! Storage is structure-of-arrays: one contiguous word arena plus flat
//! tag/flag arrays, indexed by `set * ways + way`. See `DESIGN.md` for
//! why the per-line `Vec<u64>` layout this replaced was the hottest
//! cost in the workspace.

use std::fmt;

use crate::kernels;
use crate::replacement::{PolicyTable, ReplacementKind};
use crate::{Address, CacheGeometry, CacheStats};

/// Line-flag bit: the line holds a block.
const VALID: u8 = 1 << 0;
/// Line-flag bit: the block was modified since it was filled.
const DIRTY: u8 = 1 << 1;

/// A read-only view of one cache line: tag, state bits, and the stored
/// 64-bit words.
///
/// Carrying real data is what lets the workspace implement the paper's
/// silent-write detection (§4.1): the Set-Buffer compares the value being
/// written against the value already present. The view borrows straight
/// from the cache's word arena and flag arrays; nothing is copied.
#[derive(Debug, Clone, Copy)]
pub struct LineView<'a> {
    tag: u64,
    flags: u8,
    data: &'a [u64],
}

impl<'a> LineView<'a> {
    /// The block's tag (meaningless unless [`is_valid`](Self::is_valid)).
    #[inline]
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// `true` if the line holds a block.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.flags & VALID != 0
    }

    /// `true` if the block has been modified since it was filled.
    #[inline]
    pub fn is_dirty(&self) -> bool {
        self.flags & DIRTY != 0
    }

    /// The stored words.
    #[inline]
    pub fn data(&self) -> &'a [u64] {
        self.data
    }
}

/// A read-only view of one set: `ways` lines in way order.
#[derive(Debug, Clone, Copy)]
pub struct SetView<'a> {
    cache: &'a DataCache,
    set: usize,
}

impl<'a> SetView<'a> {
    /// Number of ways in the set.
    #[inline]
    pub fn ways(&self) -> usize {
        self.cache.ways
    }

    /// The line in `way`.
    ///
    /// # Panics
    ///
    /// Panics if `way >= ways`.
    #[inline]
    pub fn line(&self, way: usize) -> LineView<'a> {
        assert!(way < self.cache.ways, "way {way} out of range");
        self.cache.line_view(self.set * self.cache.ways + way)
    }

    /// Iterates the lines in way order.
    pub fn iter(&self) -> impl Iterator<Item = LineView<'a>> + '_ {
        let base = self.set * self.cache.ways;
        (0..self.cache.ways).map(move |way| self.cache.line_view(base + way))
    }

    /// Returns the way holding `tag`, if any.
    #[inline]
    pub fn find(&self, tag: u64) -> Option<usize> {
        self.cache.find(self.set, tag)
    }
}

/// Result of writing a word that hit in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEffect {
    /// The value the word held before the write.
    pub old_value: u64,
    /// `true` if the new value equalled the old one (a silent store).
    pub was_silent: bool,
}

/// A valid block displaced by [`DataCache::fill`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine {
    /// Base address of the evicted block.
    pub base: Address,
    /// The block's words at eviction time.
    pub data: Vec<u64>,
    /// `true` if the block was dirty and must be written back to memory.
    pub dirty: bool,
}

/// Metadata of a block displaced by [`DataCache::fill_into`]; the words
/// themselves land in the caller-provided buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedMeta {
    /// Base address of the evicted block.
    pub base: Address,
    /// `true` if the block was dirty and must be written back to memory.
    pub dirty: bool,
}

/// Result of installing a block with [`DataCache::fill`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillOutcome {
    /// The way the block was installed into.
    pub way: usize,
    /// The valid block that was displaced, if the set was full.
    pub evicted: Option<EvictedLine>,
}

/// Result of installing a block with [`DataCache::fill_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillSlot {
    /// The way the block was installed into.
    pub way: usize,
    /// The displaced block's metadata, if the set was full; its words
    /// are in the buffer the caller passed.
    pub evicted: Option<EvictedMeta>,
}

/// A set-associative, write-back, value-carrying data cache.
///
/// `DataCache` is purely *functional*: it answers hit/miss, stores data, and
/// applies a replacement policy. It deliberately does **not** model SRAM
/// array traffic — that is the job of the controllers in `cache8t-core`,
/// because the same functional access costs different numbers of array
/// operations under RMW, WG, and WG+RB.
///
/// All block words live in one contiguous arena (`set * ways + way`
/// blocks of `block_words` words each) with packed per-line tag and
/// valid/dirty metadata alongside; replacement state is flat per-policy
/// arrays dispatched by a monomorphized enum. The data path is
/// allocation-free: [`fill_into`](Self::fill_into) borrows the incoming
/// block and deposits any victim in a caller-owned buffer.
///
/// # Example
///
/// ```
/// use cache8t_sim::{Address, CacheGeometry, DataCache, MainMemory, ReplacementKind};
///
/// # fn main() -> Result<(), cache8t_sim::GeometryError> {
/// let g = CacheGeometry::new(1024, 2, 32)?;
/// let mut cache = DataCache::new(g, ReplacementKind::Lru);
/// let mut mem = MainMemory::new(g.block_bytes());
///
/// let a = Address::new(0x200);
/// assert_eq!(cache.read_word(a), None); // miss
/// cache.fill(a, mem.read_block_ref(a));
/// assert_eq!(cache.read_word(a), Some(0));
/// let effect = cache.write_word(a, 42).expect("hit after fill");
/// assert!(!effect.was_silent);
/// assert_eq!(cache.read_word(a), Some(42));
/// # Ok(())
/// # }
/// ```
pub struct DataCache {
    geometry: CacheGeometry,
    stats: CacheStats,
    ways: usize,
    block_words: usize,
    /// All block words: line `set * ways + way` occupies
    /// `[line * block_words, (line + 1) * block_words)`.
    data: Box<[u64]>,
    /// Per-line tags, `set * ways + way`.
    tags: Box<[u64]>,
    /// Per-line [`VALID`]/[`DIRTY`] bits, `set * ways + way`.
    flags: Box<[u8]>,
    /// Flat replacement state for every set.
    replacement: PolicyTable,
}

impl DataCache {
    /// Creates an empty cache with the given geometry and replacement
    /// policy.
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind) -> Self {
        let ways = geometry.ways() as usize;
        let block_words = geometry.block_words();
        let lines = geometry.num_sets() as usize * ways;
        DataCache {
            geometry,
            stats: CacheStats::new(),
            ways,
            block_words,
            data: vec![0; lines * block_words].into_boxed_slice(),
            tags: vec![0; lines].into_boxed_slice(),
            flags: vec![0; lines].into_boxed_slice(),
            replacement: PolicyTable::new(replacement, geometry.num_sets(), ways),
        }
    }

    /// The cache's geometry.
    #[inline]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Accumulated hit/miss statistics.
    #[inline]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics to zero (used after warm-up, mirroring the paper's
    /// 1 B-instruction cache warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    /// The words of line `line_index = set * ways + way`.
    #[inline]
    fn block(&self, line_index: usize) -> &[u64] {
        &self.data[line_index * self.block_words..(line_index + 1) * self.block_words]
    }

    /// Mutable words of line `line_index`.
    #[inline]
    fn block_mut(&mut self, line_index: usize) -> &mut [u64] {
        &mut self.data[line_index * self.block_words..(line_index + 1) * self.block_words]
    }

    #[inline]
    fn line_view(&self, line_index: usize) -> LineView<'_> {
        LineView {
            tag: self.tags[line_index],
            flags: self.flags[line_index],
            data: self.block(line_index),
        }
    }

    /// Returns the way of `set` holding `tag`, if any.
    ///
    /// Branchless multi-way probe: all ways are compared against the
    /// SoA tag/flag arrays in one pass with no early exit
    /// ([`kernels::find_way`]).
    #[inline]
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        kernels::find_way(
            &self.tags[base..base + self.ways],
            &self.flags[base..base + self.ways],
            VALID,
            tag,
        )
    }

    /// First invalid way of `set`, if any.
    #[inline]
    fn first_invalid(&self, set: usize) -> Option<usize> {
        let base = set * self.ways;
        kernels::first_clear(&self.flags[base..base + self.ways], VALID)
    }

    /// The set that `addr` maps to.
    pub fn set_of(&self, addr: Address) -> SetView<'_> {
        self.set(self.geometry.set_index_of(addr))
    }

    /// The set at `set_index`.
    ///
    /// # Panics
    ///
    /// Panics if `set_index >= num_sets`.
    pub fn set(&self, set_index: u64) -> SetView<'_> {
        assert!(
            set_index < self.geometry.num_sets(),
            "set {set_index} out of range"
        );
        SetView {
            cache: self,
            set: set_index as usize,
        }
    }

    /// Looks up `addr` without any side effects (no statistics, no
    /// replacement update). Returns the hit way.
    pub fn probe(&self, addr: Address) -> Option<usize> {
        let set = self.geometry.set_index_of(addr) as usize;
        let tag = self.geometry.tag_of(addr);
        self.find(set, tag)
    }

    /// Touches the replacement state for `addr` if it is resident, without
    /// reading data or updating statistics.
    ///
    /// The WG/WG+RB controllers use this when a request is served from the
    /// Set-Buffer: the block logically *was* accessed, so replacement
    /// recency must advance exactly as it would in the baseline cache —
    /// otherwise the techniques would change miss rates, which the paper's
    /// techniques do not.
    pub fn touch(&mut self, addr: Address) -> Option<usize> {
        let set = self.geometry.set_index_of(addr) as usize;
        let tag = self.geometry.tag_of(addr);
        let way = self.find(set, tag)?;
        self.replacement.touch(set, way, self.ways);
        Some(way)
    }

    /// Looks up a pre-decoded `(set, tag)` pair without side effects.
    ///
    /// This is [`probe`](Self::probe) for callers that already decomposed
    /// the address (batched replay decodes every op once per chunk); the
    /// probe itself is the branchless multi-way compare.
    #[inline]
    pub fn find_in_set(&self, set_index: u64, tag: u64) -> Option<usize> {
        self.find(set_index as usize, tag)
    }

    /// Touches the replacement state of a known-resident line.
    ///
    /// Equivalent to [`touch`](Self::touch) when the caller already knows
    /// the hit way (from [`find_in_set`](Self::find_in_set) or a fill),
    /// skipping the redundant tag search.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the line is valid.
    #[inline]
    pub fn touch_at(&mut self, set_index: u64, way: usize) {
        let set = set_index as usize;
        debug_assert!(
            self.flags[set * self.ways + way] & VALID != 0,
            "touch_at on an invalid line"
        );
        self.replacement.touch(set, way, self.ways);
    }

    /// Reads word `word` of a known-resident line, with exactly the
    /// side effects of the hit arm of [`read_word`](Self::read_word):
    /// replacement touch plus one read hit.
    ///
    /// The caller vouches that `(set_index, way)` is the line the
    /// address maps to (typically the way returned by the probe or fill
    /// that established residency), so no tag search happens here.
    #[inline]
    pub fn read_word_at(&mut self, set_index: u64, way: usize, word: usize) -> u64 {
        let set = set_index as usize;
        debug_assert!(
            self.flags[set * self.ways + way] & VALID != 0,
            "read_word_at on an invalid line"
        );
        self.replacement.touch(set, way, self.ways);
        self.stats.read_hits += 1;
        self.data[(set * self.ways + way) * self.block_words + word]
    }

    /// Writes word `word` of a known-resident line, with exactly the
    /// side effects of the hit arm of [`write_word`](Self::write_word):
    /// replacement touch, dirty marking, one write hit, and silent-store
    /// accounting.
    #[inline]
    pub fn write_word_at(
        &mut self,
        set_index: u64,
        way: usize,
        word: usize,
        value: u64,
    ) -> WriteEffect {
        let set = set_index as usize;
        let line = set * self.ways + way;
        debug_assert!(
            self.flags[line] & VALID != 0,
            "write_word_at on an invalid line"
        );
        self.replacement.touch(set, way, self.ways);
        let slot = &mut self.data[line * self.block_words + word];
        let old_value = *slot;
        let was_silent = old_value == value;
        *slot = value;
        self.flags[line] |= DIRTY;
        self.stats.write_hits += 1;
        if was_silent {
            self.stats.silent_word_writes += 1;
        }
        WriteEffect {
            old_value,
            was_silent,
        }
    }

    /// Reads word `word` of a known-resident line with **no** side
    /// effects (no statistics, no replacement update) — the pre-decoded
    /// counterpart of a forwarding peek.
    #[inline]
    pub fn peek_word_at(&self, set_index: u64, way: usize, word: usize) -> u64 {
        let set = set_index as usize;
        debug_assert!(
            self.flags[set * self.ways + way] & VALID != 0,
            "peek_word_at on an invalid line"
        );
        self.data[(set * self.ways + way) * self.block_words + word]
    }

    /// Reads the aligned word containing `addr`.
    ///
    /// On a hit the replacement state is touched and `Some(value)` is
    /// returned; on a miss, `None`. Statistics are updated either way.
    pub fn read_word(&mut self, addr: Address) -> Option<u64> {
        let set = self.geometry.set_index_of(addr) as usize;
        let tag = self.geometry.tag_of(addr);
        let word = self.geometry.word_offset_of(addr);
        match self.find(set, tag) {
            Some(way) => {
                self.replacement.touch(set, way, self.ways);
                self.stats.read_hits += 1;
                Some(self.data[(set * self.ways + way) * self.block_words + word])
            }
            None => {
                self.stats.read_misses += 1;
                None
            }
        }
    }

    /// Writes the aligned word containing `addr`.
    ///
    /// On a hit the word is updated, the line marked dirty, the replacement
    /// state touched, and the [`WriteEffect`] (including silence) returned;
    /// on a miss, `None`. Statistics are updated either way.
    ///
    /// Note that the *functional* cache marks the line dirty even for silent
    /// writes; suppressing silent write-backs is the WG controller's
    /// optimization, not a property of the underlying cache.
    pub fn write_word(&mut self, addr: Address, value: u64) -> Option<WriteEffect> {
        let set = self.geometry.set_index_of(addr) as usize;
        let tag = self.geometry.tag_of(addr);
        let word = self.geometry.word_offset_of(addr);
        match self.find(set, tag) {
            Some(way) => {
                self.replacement.touch(set, way, self.ways);
                let line = set * self.ways + way;
                let slot = &mut self.data[line * self.block_words + word];
                let old_value = *slot;
                let was_silent = old_value == value;
                *slot = value;
                self.flags[line] |= DIRTY;
                self.stats.write_hits += 1;
                if was_silent {
                    self.stats.silent_word_writes += 1;
                }
                Some(WriteEffect {
                    old_value,
                    was_silent,
                })
            }
            None => {
                self.stats.write_misses += 1;
                None
            }
        }
    }

    /// Chooses the destination way for a fill into `set`, counting any
    /// eviction. Shared by [`fill`](Self::fill) and
    /// [`fill_into`](Self::fill_into).
    fn fill_slot(&mut self, set: usize, set_index: u64) -> (usize, Option<EvictedMeta>) {
        match self.first_invalid(set) {
            Some(way) => (way, None),
            None => {
                let way = self.replacement.victim(set, self.ways);
                let line = set * self.ways + way;
                let base = self
                    .geometry
                    .block_base_from_parts(self.tags[line], set_index);
                let dirty = self.flags[line] & DIRTY != 0;
                self.stats.evictions += 1;
                if dirty {
                    self.stats.dirty_evictions += 1;
                }
                (way, Some(EvictedMeta { base, dirty }))
            }
        }
    }

    /// Installs the block words in `line`, marking it valid and clean.
    fn install(&mut self, set: usize, way: usize, tag: u64, data: &[u64]) {
        let line = set * self.ways + way;
        self.tags[line] = tag;
        self.flags[line] = VALID;
        self.block_mut(line).copy_from_slice(data);
        self.replacement.filled(set, way, self.ways);
    }

    /// Installs the block containing `addr`, evicting a victim if the set is
    /// full.
    ///
    /// The installed line is clean; callers that fill-then-write (write
    /// allocation) will dirty it through [`write_word`](Self::write_word).
    /// Does not touch hit/miss statistics — the lookup that discovered the
    /// miss already counted it — but does count evictions.
    ///
    /// Any displaced block's words are returned in an owned
    /// [`EvictedLine`]; the allocation-free hot path is
    /// [`fill_into`](Self::fill_into).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the block size in words, or if
    /// the block is already present (double fill indicates a controller
    /// bug).
    pub fn fill(&mut self, addr: Address, data: &[u64]) -> FillOutcome {
        let mut victim = Vec::new();
        let slot = self.fill_into(addr, data, &mut victim);
        FillOutcome {
            way: slot.way,
            evicted: slot.evicted.map(|meta| EvictedLine {
                base: meta.base,
                data: victim,
                dirty: meta.dirty,
            }),
        }
    }

    /// Installs the block containing `addr` without allocating: the
    /// incoming words are borrowed, and a displaced block's words are
    /// deposited into `victim` (cleared first, so a buffer reused across
    /// calls settles at block capacity and never reallocates).
    ///
    /// Behaves exactly like [`fill`](Self::fill) otherwise; `victim` is
    /// left empty when nothing was evicted.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the block size in words, or if
    /// the block is already present (double fill indicates a controller
    /// bug).
    pub fn fill_into(&mut self, addr: Address, data: &[u64], victim: &mut Vec<u64>) -> FillSlot {
        assert_eq!(
            data.len(),
            self.block_words,
            "fill data must be exactly one block"
        );
        let set_index = self.geometry.set_index_of(addr);
        let set = set_index as usize;
        let tag = self.geometry.tag_of(addr);
        assert!(
            self.find(set, tag).is_none(),
            "block {addr} is already resident; double fill"
        );
        victim.clear();
        let (way, evicted) = self.fill_slot(set, set_index);
        if evicted.is_some() {
            victim.extend_from_slice(self.block(set * self.ways + way));
        }
        self.install(set, way, tag, data);
        FillSlot { way, evicted }
    }

    /// Per-way `(tag, valid, dirty)` of one line, without constructing a
    /// data view — the metadata walk the WG Set-Buffer fill performs.
    ///
    /// # Panics
    ///
    /// Panics if the line is out of range.
    #[inline]
    pub fn line_meta(&self, set_index: u64, way: usize) -> (u64, bool, bool) {
        let line = set_index as usize * self.ways + way;
        let flags = self.flags[line];
        (self.tags[line], flags & VALID != 0, flags & DIRTY != 0)
    }

    /// The contiguous word arena of every way of `set_index`, in way
    /// order — `ways * block_words` words. This is exactly one SRAM row,
    /// which is why the WG Set-Buffer can snapshot it with a single copy.
    ///
    /// # Panics
    ///
    /// Panics if `set_index >= num_sets`.
    #[inline]
    pub fn set_words(&self, set_index: u64) -> &[u64] {
        assert!(
            set_index < self.geometry.num_sets(),
            "set {set_index} out of range"
        );
        let base = set_index as usize * self.ways * self.block_words;
        &self.data[base..base + self.ways * self.block_words]
    }

    /// Replaces the word arena of every way of `set_index` at once,
    /// comparing first with the branchless kernel and skipping the copy
    /// when nothing changed. Returns `true` iff any word changed.
    ///
    /// Touches **no** metadata — tags, valid/dirty flags, replacement
    /// state, and statistics are untouched; callers account dirtiness
    /// per way themselves (see [`set_line_dirty`](Self::set_line_dirty)).
    /// For ways whose stored words should not move, `data` must carry
    /// the current stored words (a Set-Buffer snapshot does by
    /// construction).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `ways * block_words` words.
    pub fn replace_set_words(&mut self, set_index: u64, data: &[u64]) -> bool {
        assert_eq!(
            data.len(),
            self.ways * self.block_words,
            "set data must cover every way"
        );
        let base = set_index as usize * self.ways * self.block_words;
        let stored = &mut self.data[base..base + self.ways * self.block_words];
        let changed = kernels::words_differ(stored, data);
        if changed {
            stored.copy_from_slice(data);
        }
        changed
    }

    /// Sets or clears the dirty bit of a resident line.
    ///
    /// # Panics
    ///
    /// Panics if the line is invalid.
    #[inline]
    pub fn set_line_dirty(&mut self, set_index: u64, way: usize, dirty: bool) {
        let line = set_index as usize * self.ways + way;
        assert!(self.flags[line] & VALID != 0, "cannot mark an invalid line");
        if dirty {
            self.flags[line] |= DIRTY;
        } else {
            self.flags[line] &= !DIRTY;
        }
    }

    /// Overwrites the data (and dirty bit) of a resident line.
    ///
    /// This is the primitive behind the WG controller's Set-Buffer
    /// write-back: the buffered, modified copy of each block is deposited
    /// back into the array.
    ///
    /// # Panics
    ///
    /// Panics if the way is invalid or `data` is not exactly one block.
    pub fn update_block(&mut self, set_index: u64, way: usize, data: &[u64], dirty: bool) {
        assert_eq!(data.len(), self.block_words);
        let line = set_index as usize * self.ways + way;
        assert!(
            self.flags[line] & VALID != 0,
            "cannot update an invalid line"
        );
        self.block_mut(line).copy_from_slice(data);
        if dirty {
            self.flags[line] |= DIRTY;
        } else {
            self.flags[line] &= !DIRTY;
        }
    }

    /// Like [`update_block`](Self::update_block), but compares first with
    /// the branchless block-compare kernel and skips the copy when the
    /// buffered data is identical to the stored block. Returns `true` iff
    /// any word actually changed.
    ///
    /// The dirty bit is updated unconditionally, so the observable cache
    /// state is exactly that of `update_block`; only the redundant
    /// memcpy is elided. This is the WG Set-Buffer deposit path.
    ///
    /// # Panics
    ///
    /// Panics if the way is invalid or `data` is not exactly one block.
    pub fn update_block_checked(
        &mut self,
        set_index: u64,
        way: usize,
        data: &[u64],
        dirty: bool,
    ) -> bool {
        assert_eq!(data.len(), self.block_words);
        let line = set_index as usize * self.ways + way;
        assert!(
            self.flags[line] & VALID != 0,
            "cannot update an invalid line"
        );
        let changed = kernels::words_differ(self.block(line), data);
        if changed {
            self.block_mut(line).copy_from_slice(data);
        }
        if dirty {
            self.flags[line] |= DIRTY;
        } else {
            self.flags[line] &= !DIRTY;
        }
        changed
    }

    /// Marks a resident line clean (after its data has been written back to
    /// memory).
    ///
    /// # Panics
    ///
    /// Panics if the way is invalid.
    pub fn mark_clean(&mut self, set_index: u64, way: usize) {
        let line = set_index as usize * self.ways + way;
        assert!(
            self.flags[line] & VALID != 0,
            "cannot clean an invalid line"
        );
        self.flags[line] &= !DIRTY;
    }

    /// Iterates over `(set_index, way, line)` for every valid line.
    pub fn iter_valid_lines(&self) -> impl Iterator<Item = (u64, usize, LineView<'_>)> + '_ {
        (0..self.tags.len())
            .filter(|&line| self.flags[line] & VALID != 0)
            .map(|line| {
                (
                    (line / self.ways) as u64,
                    line % self.ways,
                    self.line_view(line),
                )
            })
    }

    /// Number of valid lines currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.flags.iter().filter(|&&f| f & VALID != 0).count()
    }
}

impl fmt::Debug for DataCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DataCache")
            .field("geometry", &self.geometry)
            .field("resident_blocks", &self.resident_blocks())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MainMemory;

    fn small_cache() -> DataCache {
        // 2 sets, 2 ways, 32 B blocks.
        DataCache::new(
            CacheGeometry::new(128, 2, 32).unwrap(),
            ReplacementKind::Lru,
        )
    }

    #[test]
    fn cold_cache_misses_everything() {
        let mut c = small_cache();
        assert_eq!(c.read_word(Address::new(0)), None);
        assert_eq!(c.write_word(Address::new(0x20), 1), None);
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().write_misses, 1);
        assert_eq!(c.resident_blocks(), 0);
    }

    #[test]
    fn fill_then_hit() {
        let mut c = small_cache();
        let a = Address::new(0x40);
        c.fill(a, &[7, 8, 9, 10]);
        assert_eq!(c.read_word(a), Some(7));
        assert_eq!(c.read_word(a.offset(8)), Some(8));
        assert_eq!(c.read_word(a.offset(24)), Some(10));
        assert_eq!(c.stats().read_hits, 3);
    }

    #[test]
    fn write_detects_silence() {
        let mut c = small_cache();
        let a = Address::new(0x40);
        c.fill(a, &[7, 0, 0, 0]);
        let e = c.write_word(a, 7).unwrap();
        assert!(e.was_silent);
        assert_eq!(e.old_value, 7);
        let e = c.write_word(a, 8).unwrap();
        assert!(!e.was_silent);
        assert_eq!(e.old_value, 7);
        assert_eq!(c.stats().silent_word_writes, 1);
    }

    #[test]
    fn write_marks_dirty_even_when_silent() {
        let mut c = small_cache();
        let a = Address::new(0x40);
        c.fill(a, &[7, 0, 0, 0]);
        c.write_word(a, 7).unwrap();
        let way = c.probe(a).unwrap();
        let set = c.geometry().set_index_of(a);
        assert!(c.set(set).line(way).is_dirty());
    }

    #[test]
    fn eviction_returns_dirty_victim() {
        let mut c = small_cache();
        // Set 0 holds blocks whose addresses have bit 5 clear (offset_bits=5,
        // 2 sets -> index bit is bit 5).
        let a = Address::new(0x000); // set 0
        let b = Address::new(0x080); // set 0 (0x80 >> 5 = 4, & 1 = 0)
        let d = Address::new(0x100); // set 0
        c.fill(a, &[1, 0, 0, 0]);
        c.fill(b, &[2, 0, 0, 0]);
        c.write_word(a, 5).unwrap(); // dirty a, and make it MRU
        let out = c.fill(d, &[3, 0, 0, 0]);
        let ev = out.evicted.expect("set was full");
        assert_eq!(ev.base, b, "LRU victim is b");
        assert!(!ev.dirty);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().dirty_evictions, 0);
        // Now evict the dirty block a.
        let e = Address::new(0x180);
        let out = c.fill(e, &[4, 0, 0, 0]);
        let ev = out.evicted.expect("set full again");
        assert_eq!(ev.base, a);
        assert!(ev.dirty);
        assert_eq!(ev.data, vec![5, 0, 0, 0]);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn fill_into_reuses_the_victim_buffer() {
        let mut c = small_cache();
        let mut victim = Vec::new();
        c.fill_into(Address::new(0x000), &[1, 0, 0, 0], &mut victim);
        assert!(victim.is_empty(), "no eviction on a cold fill");
        c.fill_into(Address::new(0x080), &[2, 0, 0, 0], &mut victim);
        c.write_word(Address::new(0x080), 9).unwrap();
        let slot = c.fill_into(Address::new(0x100), &[3, 0, 0, 0], &mut victim);
        let meta = slot.evicted.expect("set was full");
        assert_eq!(meta.base, Address::new(0x000), "LRU victim");
        assert!(!meta.dirty);
        assert_eq!(victim, vec![1, 0, 0, 0]);
        let capacity = victim.capacity();
        // The next eviction reuses the buffer without growing it.
        let slot = c.fill_into(Address::new(0x180), &[4, 0, 0, 0], &mut victim);
        let meta = slot.evicted.expect("set full again");
        assert_eq!(meta.base, Address::new(0x080));
        assert!(meta.dirty);
        assert_eq!(victim, vec![9, 0, 0, 0]);
        assert_eq!(victim.capacity(), capacity);
    }

    #[test]
    #[should_panic(expected = "double fill")]
    fn double_fill_panics() {
        let mut c = small_cache();
        c.fill(Address::new(0x40), &[0; 4]);
        c.fill(Address::new(0x47), &[0; 4]); // same block
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut c = small_cache();
        let a = Address::new(0x40);
        c.fill(a, &[0; 4]);
        let before = *c.stats();
        assert!(c.probe(a).is_some());
        assert!(c.probe(Address::new(0x60)).is_none());
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn update_block_replaces_data_and_dirty() {
        let mut c = small_cache();
        let a = Address::new(0x40);
        c.fill(a, &[0; 4]);
        let set = c.geometry().set_index_of(a);
        let way = c.probe(a).unwrap();
        c.update_block(set, way, &[9, 9, 9, 9], true);
        assert_eq!(c.read_word(a), Some(9));
        assert!(c.set(set).line(way).is_dirty());
        c.mark_clean(set, way);
        assert!(!c.set(set).line(way).is_dirty());
    }

    #[test]
    fn works_with_backing_memory_roundtrip() {
        let g = CacheGeometry::new(128, 2, 32).unwrap();
        let mut c = DataCache::new(g, ReplacementKind::Lru);
        let mut mem = MainMemory::new(32);
        mem.write_word(Address::new(0x40), 77);
        let a = Address::new(0x40);
        c.fill(a, mem.read_block_ref(a));
        assert_eq!(c.read_word(a), Some(77));
        c.write_word(a, 78).unwrap();
        // Evict everything in set of a by filling conflicting blocks.
        let mut evicted_data = None;
        for i in 1..=2 {
            let out = c.fill(
                Address::new(0x40 + i * 0x80),
                mem.read_block_ref(Address::new(0x40 + i * 0x80)),
            );
            if let Some(ev) = out.evicted {
                if ev.base == Address::new(0x40) {
                    evicted_data = Some(ev);
                }
            }
        }
        let ev = evicted_data.expect("a was evicted");
        assert!(ev.dirty);
        mem.write_block_from(ev.base, &ev.data);
        assert_eq!(mem.read_word(Address::new(0x40)), 78);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut c = small_cache();
        c.read_word(Address::new(0));
        assert_ne!(c.stats().accesses(), 0);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn iter_valid_lines_sees_all_fills() {
        let mut c = small_cache();
        c.fill(Address::new(0x00), &[0; 4]);
        c.fill(Address::new(0x20), &[0; 4]);
        c.fill(Address::new(0x80), &[0; 4]);
        assert_eq!(c.resident_blocks(), 3);
        let sets: Vec<u64> = c.iter_valid_lines().map(|(s, _, _)| s).collect();
        assert_eq!(sets.iter().filter(|&&s| s == 0).count(), 2);
        assert_eq!(sets.iter().filter(|&&s| s == 1).count(), 1);
    }
}
