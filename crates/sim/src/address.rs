//! Physical addresses and access kinds.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A physical byte address presented to the cache.
///
/// The paper assumes 48-bit physical addresses (§5.4 sizes the Tag-Buffer
/// from that assumption); we carry the full 64 bits and let
/// [`CacheGeometry`](crate::CacheGeometry) decide how many of them are
/// meaningful.
///
/// `Address` is a transparent newtype so that addresses are never confused
/// with data values, set indices, or tags in the simulator plumbing.
///
/// # Example
///
/// ```
/// use cache8t_sim::Address;
///
/// let a = Address::new(0x1040);
/// assert_eq!(a.raw(), 0x1040);
/// assert_eq!(a.offset(8), Address::new(0x1048));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw 64-bit value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns this address displaced by `bytes` (wrapping on overflow).
    #[inline]
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Address(self.0.wrapping_add(bytes))
    }

    /// Returns the address aligned down to a multiple of `align` bytes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `align` is not a power of two.
    #[inline]
    #[must_use]
    pub fn align_down(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        Address(self.0 & !(align - 1))
    }

    /// Returns `true` if this address is a multiple of `align` bytes.
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.0 & (align - 1) == 0
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl From<Address> for u64 {
    fn from(addr: Address) -> Self {
        addr.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// Whether a memory request reads or writes the cache.
///
/// These are the two request kinds of the paper's L1 data cache; the four
/// consecutive-access scenarios of Figure 4 (RR, RW, WW, WR) are ordered
/// pairs of this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load: the cache must return the most recently written value.
    Read,
    /// A store: in an 8T SRAM array this triggers a read-modify-write.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Read`].
    #[inline]
    pub const fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// Returns `true` for [`AccessKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_roundtrips_raw_value() {
        let a = Address::new(0xdead_beef);
        assert_eq!(a.raw(), 0xdead_beef);
        assert_eq!(u64::from(a), 0xdead_beef);
        assert_eq!(Address::from(0xdead_beef_u64), a);
    }

    #[test]
    fn offset_wraps_on_overflow() {
        let a = Address::new(u64::MAX);
        assert_eq!(a.offset(1), Address::new(0));
    }

    #[test]
    fn align_down_clears_low_bits() {
        let a = Address::new(0x1037);
        assert_eq!(a.align_down(32), Address::new(0x1020));
        assert_eq!(a.align_down(1), a);
    }

    #[test]
    fn is_aligned_checks_low_bits() {
        assert!(Address::new(0x1040).is_aligned(32));
        assert!(!Address::new(0x1041).is_aligned(32));
        assert!(Address::new(0).is_aligned(64));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Address::new(0x1040).to_string(), "0x1040");
        assert_eq!(format!("{:x}", Address::new(255)), "ff");
        assert_eq!(format!("{:X}", Address::new(255)), "FF");
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn access_kind_display() {
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }

    #[test]
    fn default_address_is_zero() {
        assert_eq!(Address::default(), Address::new(0));
    }
}
