//! Error types for cache configuration.

use std::error::Error;
use std::fmt;

/// An invalid cache geometry was requested.
///
/// Returned by [`CacheGeometry::new`](crate::CacheGeometry::new). All fields
/// of a geometry must be powers of two and mutually consistent (the paper's
/// configurations — 32/64/128 KB, 4-way, 32/64 B blocks — all satisfy these
/// constraints).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeometryError {
    /// Capacity is zero or not a power of two.
    CapacityNotPowerOfTwo {
        /// The rejected capacity in bytes.
        capacity_bytes: u64,
    },
    /// Block size is zero, not a power of two, or not a multiple of the
    /// 8-byte word the simulator stores.
    InvalidBlockSize {
        /// The rejected block size in bytes.
        block_bytes: u64,
    },
    /// Associativity is zero or not a power of two.
    InvalidWays {
        /// The rejected associativity.
        ways: u64,
    },
    /// `ways * block_bytes` does not divide the capacity into at least one
    /// power-of-two set.
    Inconsistent {
        /// Requested capacity in bytes.
        capacity_bytes: u64,
        /// Requested associativity.
        ways: u64,
        /// Requested block size in bytes.
        block_bytes: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::CapacityNotPowerOfTwo { capacity_bytes } => write!(
                f,
                "cache capacity must be a nonzero power of two, got {capacity_bytes} bytes"
            ),
            GeometryError::InvalidBlockSize { block_bytes } => write!(
                f,
                "block size must be a power-of-two multiple of 8 bytes, got {block_bytes} bytes"
            ),
            GeometryError::InvalidWays { ways } => {
                write!(
                    f,
                    "associativity must be a nonzero power of two, got {ways}"
                )
            }
            GeometryError::Inconsistent {
                capacity_bytes,
                ways,
                block_bytes,
            } => write!(
                f,
                "capacity {capacity_bytes} B is not divisible into power-of-two sets \
                 of {ways} ways x {block_bytes} B blocks"
            ),
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = GeometryError::CapacityNotPowerOfTwo { capacity_bytes: 3 };
        assert!(e.to_string().contains("3 bytes"));
        let e = GeometryError::InvalidBlockSize { block_bytes: 12 };
        assert!(e.to_string().contains("12 bytes"));
        let e = GeometryError::InvalidWays { ways: 3 };
        assert!(e.to_string().contains('3'));
        let e = GeometryError::Inconsistent {
            capacity_bytes: 64,
            ways: 4,
            block_bytes: 32,
        };
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<GeometryError>();
    }
}
