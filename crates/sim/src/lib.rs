//! # cache8t-sim — value-carrying set-associative cache substrate
//!
//! This crate is the cache-simulation substrate of the `cache8t` workspace,
//! a from-scratch reproduction of *"Performance and Power Solutions for
//! Caches Using 8T SRAM Cells"* (Farahani & Baniasadi, MICRO 2012).
//!
//! The paper evaluates its techniques with a Pin-based L1 data-cache
//! simulator. Two properties of that simulator matter and are reproduced
//! here:
//!
//! 1. **The cache carries data values**, not just tags. Silent-write
//!    detection (paper §4.1) compares the value being written against the
//!    value already stored, so a tag-only simulator cannot express the
//!    technique. [`DataCache`] stores every cache block as 64-bit words.
//! 2. **Replacement and geometry are configurable** (the paper sweeps cache
//!    size and block size in §5.3). [`CacheGeometry`] validates arbitrary
//!    power-of-two configurations and [`ReplacementKind`] provides LRU (the
//!    paper's policy) plus FIFO/Random/Tree-PLRU for sensitivity studies.
//!
//! The higher-level crates build on this one: `cache8t-core` implements the
//! RMW / WG / WG+RB controllers on top of [`DataCache`] + [`MainMemory`],
//! and `cache8t-trace` generates the request streams.
//!
//! ## Example
//!
//! ```
//! use cache8t_sim::{Address, CacheGeometry, DataCache, MainMemory, ReplacementKind};
//!
//! # fn main() -> Result<(), cache8t_sim::GeometryError> {
//! // The paper's baseline L1D: 64 KB, 4-way, 32 B blocks, LRU.
//! let geometry = CacheGeometry::new(64 * 1024, 4, 32)?;
//! let mut cache = DataCache::new(geometry, ReplacementKind::Lru);
//! let mut memory = MainMemory::new(geometry.block_bytes());
//!
//! let addr = Address::new(0x1040);
//! assert!(cache.probe(addr).is_none()); // cold miss
//! cache.fill(addr, memory.read_block_ref(geometry.block_base(addr)));
//! assert!(cache.probe(addr).is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod address;
mod cache;
mod error;
mod geometry;
mod hash;
pub mod kernels;
mod memory;
mod replacement;
mod stats;

pub use address::{AccessKind, Address};
pub use cache::{
    DataCache, EvictedLine, EvictedMeta, FillOutcome, FillSlot, LineView, SetView, WriteEffect,
};
pub use error::GeometryError;
pub use geometry::CacheGeometry;
pub use hash::{FastHasher, FastMap, FastSet};
pub use memory::MainMemory;
pub use replacement::{
    Fifo, Lru, PolicyTable, RandomPolicy, ReplacementKind, ReplacementPolicy, TreePlru,
};
pub use stats::CacheStats;
