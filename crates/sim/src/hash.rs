//! A fast, deterministic hasher for the simulator's integer-keyed maps.
//!
//! The hot paths of the workspace (sparse [`MainMemory`](crate::MainMemory)
//! blocks, the trace generator's shadow image, stream-statistics
//! footprint counting) all key hash maps by `u64` addresses. The standard
//! library's default SipHash is DoS-resistant but measurably slow for
//! that shape; these maps never hold attacker-controlled keys, so they
//! use a splitmix64-style finalizer instead — one multiply-xor-shift
//! chain per key, fully deterministic across runs and platforms.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed with [`FastHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

/// A splitmix64-finalized hasher for integer keys.
///
/// Not resistant to adversarial key choice — use only for maps whose
/// keys the simulator itself generates (addresses, set indices, block
/// bases).
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback: fold 8-byte chunks. Integer keys hit the
        // specialized methods below instead.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: full avalanche so both the bucket index
        // (low bits) and the control byte (high bits) are well mixed.
        let mut z = self.0;
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_behave_like_std_maps() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 8, i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 8)), Some(&i));
        }
        assert_eq!(m.get(&7), None);
    }

    #[test]
    fn hashing_is_deterministic() {
        let hash = |n: u64| {
            let mut h = FastHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
        // Sequential addresses must not collide in the low bits (the
        // bucket index): check a small window is collision-free.
        let mut low: Vec<u64> = (0..1024).map(|i| hash(i * 8) & 0x3ff).collect();
        low.sort_unstable();
        low.dedup();
        assert!(low.len() > 512, "low bits poorly mixed: {}", low.len());
    }

    #[test]
    fn byte_fallback_matches_chunked_u64s() {
        let mut a = FastHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FastHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
