//! Cache geometry: capacity / associativity / block size and address
//! decomposition.

use serde::{Deserialize, Serialize};

use crate::{Address, GeometryError};

/// Number of bytes in the 64-bit word granularity the simulator stores.
pub(crate) const WORD_BYTES: u64 = 8;

/// The shape of a set-associative cache and the induced address split.
///
/// A `CacheGeometry` is an immutable, validated description of a cache:
/// total capacity, associativity (ways), and block size, all powers of two.
/// It provides the tag / set-index / block-offset decomposition used by
/// every component in the workspace.
///
/// The paper's baseline is 64 KB, 4-way, 32 B blocks (§5.1); the
/// sensitivity studies use 32 KB/64 B (Figure 10) and 32 KB & 128 KB/32 B
/// (Figure 11). [`CacheGeometry::paper_baseline`] and friends construct
/// those configurations.
///
/// # Example
///
/// ```
/// use cache8t_sim::{Address, CacheGeometry};
///
/// # fn main() -> Result<(), cache8t_sim::GeometryError> {
/// let g = CacheGeometry::new(64 * 1024, 4, 32)?;
/// assert_eq!(g.num_sets(), 512);
/// assert_eq!(g.set_bytes(), 128); // the Set-Buffer size of paper §5.4
///
/// let a = Address::new(0x0001_2345);
/// assert_eq!(g.block_offset_of(a), 0x05);
/// assert_eq!(g.set_index_of(a), (0x0001_2345 >> 5) & 0x1ff);
/// assert_eq!(g.tag_of(a), 0x0001_2345 >> 14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    capacity_bytes: u64,
    ways: u64,
    block_bytes: u64,
    num_sets: u64,
    offset_bits: u32,
    index_bits: u32,
}

impl CacheGeometry {
    /// Creates a validated geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if any of the parameters is zero or not a
    /// power of two, if `block_bytes` is smaller than the 8-byte simulator
    /// word, or if `capacity_bytes < ways * block_bytes`.
    pub fn new(capacity_bytes: u64, ways: u64, block_bytes: u64) -> Result<Self, GeometryError> {
        if capacity_bytes == 0 || !capacity_bytes.is_power_of_two() {
            return Err(GeometryError::CapacityNotPowerOfTwo { capacity_bytes });
        }
        if block_bytes < WORD_BYTES || !block_bytes.is_power_of_two() {
            return Err(GeometryError::InvalidBlockSize { block_bytes });
        }
        if ways == 0 || !ways.is_power_of_two() {
            return Err(GeometryError::InvalidWays { ways });
        }
        let set_bytes = ways * block_bytes;
        if capacity_bytes < set_bytes {
            return Err(GeometryError::Inconsistent {
                capacity_bytes,
                ways,
                block_bytes,
            });
        }
        let num_sets = capacity_bytes / set_bytes;
        debug_assert!(num_sets.is_power_of_two());
        Ok(CacheGeometry {
            capacity_bytes,
            ways,
            block_bytes,
            num_sets,
            offset_bits: block_bytes.trailing_zeros(),
            index_bits: num_sets.trailing_zeros(),
        })
    }

    /// The paper's baseline L1 data cache: 64 KB, 4-way, 32 B blocks (§5.1).
    pub fn paper_baseline() -> Self {
        CacheGeometry::new(64 * 1024, 4, 32).expect("baseline geometry is valid")
    }

    /// The Figure 10 configuration: 32 KB, 4-way, 64 B blocks.
    pub fn paper_large_blocks() -> Self {
        CacheGeometry::new(32 * 1024, 4, 64).expect("figure 10 geometry is valid")
    }

    /// The Figure 11 small configuration: 32 KB, 4-way, 32 B blocks.
    pub fn paper_small() -> Self {
        CacheGeometry::new(32 * 1024, 4, 32).expect("figure 11 geometry is valid")
    }

    /// The Figure 11 large configuration: 128 KB, 4-way, 32 B blocks.
    pub fn paper_large() -> Self {
        CacheGeometry::new(128 * 1024, 4, 32).expect("figure 11 geometry is valid")
    }

    /// Total capacity in bytes.
    #[inline]
    pub const fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Associativity (blocks per set).
    #[inline]
    pub const fn ways(&self) -> u64 {
        self.ways
    }

    /// Block (cache line) size in bytes.
    #[inline]
    pub const fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Block size in 64-bit words.
    #[inline]
    pub const fn block_words(&self) -> usize {
        (self.block_bytes / WORD_BYTES) as usize
    }

    /// Number of sets.
    #[inline]
    pub const fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Size of one full set in bytes (`ways * block_bytes`).
    ///
    /// This is the capacity of the paper's Set-Buffer (§5.4: 128 B for the
    /// baseline geometry).
    #[inline]
    pub const fn set_bytes(&self) -> u64 {
        self.ways * self.block_bytes
    }

    /// Number of low address bits naming a byte within a block.
    #[inline]
    pub const fn offset_bits(&self) -> u32 {
        self.offset_bits
    }

    /// Number of address bits naming the set.
    #[inline]
    pub const fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Number of tag bits for a physical address of `address_bits` bits.
    ///
    /// The paper assumes 48-bit physical addresses when sizing the
    /// Tag-Buffer (§5.4).
    #[inline]
    pub const fn tag_bits(&self, address_bits: u32) -> u32 {
        address_bits.saturating_sub(self.offset_bits + self.index_bits)
    }

    /// Byte offset of `addr` within its block.
    #[inline]
    pub fn block_offset_of(&self, addr: Address) -> u64 {
        addr.raw() & (self.block_bytes - 1)
    }

    /// Word offset of `addr` within its block (index into block words).
    #[inline]
    pub fn word_offset_of(&self, addr: Address) -> usize {
        (self.block_offset_of(addr) / WORD_BYTES) as usize
    }

    /// Set index of `addr`.
    #[inline]
    pub fn set_index_of(&self, addr: Address) -> u64 {
        (addr.raw() >> self.offset_bits) & (self.num_sets - 1)
    }

    /// Tag of `addr` (all address bits above offset and index).
    #[inline]
    pub fn tag_of(&self, addr: Address) -> u64 {
        addr.raw() >> (self.offset_bits + self.index_bits)
    }

    /// First byte address of the block containing `addr`.
    #[inline]
    pub fn block_base(&self, addr: Address) -> Address {
        addr.align_down(self.block_bytes)
    }

    /// Coarse set-index bucket of `addr` for conflict-heat telemetry:
    /// partitions the set-index space into `buckets` equal-width
    /// ranges and returns which range `addr`'s set falls in (always
    /// `< buckets`). Caches with fewer sets than buckets simply leave
    /// the high buckets unused.
    #[inline]
    pub fn heat_bucket_of(&self, addr: Address, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        ((self.set_index_of(addr) as u128 * buckets as u128) / self.num_sets as u128) as usize
    }

    /// Reconstructs the block base address of a (tag, set index) pair.
    ///
    /// Inverse of [`tag_of`](Self::tag_of) + [`set_index_of`](Self::set_index_of)
    /// at block granularity.
    #[inline]
    pub fn block_base_from_parts(&self, tag: u64, set_index: u64) -> Address {
        debug_assert!(set_index < self.num_sets);
        Address::new(
            (tag << (self.offset_bits + self.index_bits)) | (set_index << self.offset_bits),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_numbers() {
        let g = CacheGeometry::paper_baseline();
        assert_eq!(g.capacity_bytes(), 65536);
        assert_eq!(g.ways(), 4);
        assert_eq!(g.block_bytes(), 32);
        assert_eq!(g.num_sets(), 512);
        // Paper §5.4: "the size of a cache set is 128B".
        assert_eq!(g.set_bytes(), 128);
        assert_eq!(g.block_words(), 4);
        assert_eq!(g.offset_bits(), 5);
        assert_eq!(g.index_bits(), 9);
        // Paper §5.4: Tag-Buffer < 150 bits for 48-bit physical addresses.
        // 4 tags of (48 - 5 - 9) = 34 bits + 9 index bits = 145 bits.
        assert_eq!(g.tag_bits(48), 34);
        let tag_buffer_bits = 4 * u64::from(g.tag_bits(48)) + u64::from(g.index_bits());
        assert!(tag_buffer_bits <= 150, "got {tag_buffer_bits} bits");
    }

    #[test]
    fn sweep_configurations_are_valid() {
        for g in [
            CacheGeometry::paper_large_blocks(),
            CacheGeometry::paper_small(),
            CacheGeometry::paper_large(),
        ] {
            assert!(g.num_sets() >= 1);
            assert_eq!(g.capacity_bytes(), g.num_sets() * g.set_bytes());
        }
        assert_eq!(CacheGeometry::paper_large_blocks().num_sets(), 128);
        assert_eq!(CacheGeometry::paper_small().num_sets(), 256);
        assert_eq!(CacheGeometry::paper_large().num_sets(), 1024);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(matches!(
            CacheGeometry::new(0, 4, 32),
            Err(GeometryError::CapacityNotPowerOfTwo { .. })
        ));
        assert!(matches!(
            CacheGeometry::new(65536, 4, 12),
            Err(GeometryError::InvalidBlockSize { .. })
        ));
        assert!(matches!(
            CacheGeometry::new(65536, 4, 4),
            Err(GeometryError::InvalidBlockSize { .. })
        ));
        assert!(matches!(
            CacheGeometry::new(65536, 3, 32),
            Err(GeometryError::InvalidWays { .. })
        ));
        assert!(matches!(
            CacheGeometry::new(64, 4, 32),
            Err(GeometryError::Inconsistent { .. })
        ));
        assert!(matches!(
            CacheGeometry::new(65535, 4, 32),
            Err(GeometryError::CapacityNotPowerOfTwo { .. })
        ));
    }

    #[test]
    fn fully_associative_single_set_is_allowed() {
        let g = CacheGeometry::new(128, 4, 32).unwrap();
        assert_eq!(g.num_sets(), 1);
        assert_eq!(g.index_bits(), 0);
        assert_eq!(g.set_index_of(Address::new(0xffff_ffff)), 0);
    }

    #[test]
    fn decomposition_roundtrips() {
        let g = CacheGeometry::paper_baseline();
        for raw in [0u64, 0x1040, 0xdead_beef, u64::MAX - 7] {
            let a = Address::new(raw);
            let tag = g.tag_of(a);
            let idx = g.set_index_of(a);
            let base = g.block_base_from_parts(tag, idx);
            assert_eq!(base, g.block_base(a), "address {a}");
        }
    }

    #[test]
    fn heat_buckets_partition_the_set_space() {
        let g = CacheGeometry::paper_baseline(); // 512 sets
        let buckets = 16;
        // Every set lands in a valid bucket, and the mapping is
        // monotone in the set index.
        let mut last = 0;
        for set in 0..g.num_sets() {
            let addr = g.block_base_from_parts(0, set);
            let b = g.heat_bucket_of(addr, buckets);
            assert!(b < buckets);
            assert!(b >= last, "bucket map must be monotone");
            last = b;
        }
        assert_eq!(last, buckets - 1, "the top sets reach the top bucket");
        // A single-set cache puts everything in bucket 0.
        let tiny = CacheGeometry::new(128, 4, 32).unwrap();
        assert_eq!(tiny.heat_bucket_of(Address::new(0xffff_ff00), buckets), 0);
    }

    #[test]
    fn word_offset_of_addresses_within_block() {
        let g = CacheGeometry::paper_baseline();
        assert_eq!(g.word_offset_of(Address::new(0x100)), 0);
        assert_eq!(g.word_offset_of(Address::new(0x108)), 1);
        assert_eq!(g.word_offset_of(Address::new(0x10f)), 1);
        assert_eq!(g.word_offset_of(Address::new(0x118)), 3);
    }

    #[test]
    fn tag_bits_saturates() {
        let g = CacheGeometry::paper_baseline();
        assert_eq!(g.tag_bits(4), 0);
    }
}
