//! End-to-end service test against the real `cache8t` binary: submit a
//! sweep over a unix socket, SIGKILL the daemon mid-run, restart it on
//! the same checkpoint journal, and assert the resumed document is
//! byte-identical to a one-shot `cache8t sweep` — for 1 and 4 workers.
//!
//! This is the acceptance criterion of the serve subsystem and the test
//! CI's `serve-smoke` job mirrors in shell.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const PLAN_FLAGS: &[&str] = &[
    "--profiles",
    "gcc,mcf",
    "--geometries",
    "baseline",
    "--ops",
    "20000",
    "--seed",
    "7",
];

fn cache8t() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cache8t"))
}

fn run_ok(args: &[&str]) -> String {
    let output = cache8t()
        .args(args)
        .stderr(Stdio::piped())
        .output()
        .expect("spawn cache8t");
    assert!(
        output.status.success(),
        "cache8t {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf8 stdout")
}

fn spawn_server(sock: &Path, ckpt: &Path, jobs: &str) -> Child {
    cache8t()
        .args([
            "serve",
            "--listen",
            &format!("unix:{}", sock.display()),
            "--checkpoint-dir",
            &ckpt.display().to_string(),
            "--jobs",
            jobs,
            "--trace-store",
            "off",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server")
}

/// Waits until the checkpoint dir holds a journal with at least one
/// *complete* (newline-terminated) entry, so the kill below lands after
/// some — ideally not all — benchmarks were checkpointed.
fn wait_for_journal_entry(ckpt: &Path, deadline: Duration) -> PathBuf {
    let start = Instant::now();
    loop {
        if let Ok(entries) = std::fs::read_dir(ckpt) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "jsonl") {
                    if let Ok(text) = std::fs::read_to_string(&path) {
                        if text.lines().count() >= 1 && text.contains('\n') {
                            return path;
                        }
                    }
                }
            }
        }
        assert!(
            start.elapsed() < deadline,
            "no journal entry appeared in {ckpt:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn kill_and_resume_round_trip(jobs: &str) {
    let dir = std::env::temp_dir().join(format!("c8t-serve-e2e-j{jobs}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let sock = dir.join("serve.sock");
    let connect = format!("unix:{}", sock.display());
    let ckpt = dir.join("ckpt");
    let expected = dir.join("expected.json");
    let got = dir.join("got.json");

    // The reference: a one-shot batch sweep of the same plan.
    let mut sweep_args = vec!["sweep"];
    sweep_args.extend_from_slice(PLAN_FLAGS);
    sweep_args.extend_from_slice(&[
        "--jobs",
        jobs,
        "--trace-store",
        "off",
        "--out",
        expected.to_str().expect("utf8 path"),
    ]);
    run_ok(&sweep_args);

    // Start the daemon, submit, and SIGKILL it mid-sweep — after at
    // least one benchmark hit the journal, before a clean shutdown.
    let mut server = spawn_server(&sock, &ckpt, jobs);
    let mut submit_args = vec!["client", "--connect", &connect, "submit"];
    submit_args.extend_from_slice(PLAN_FLAGS);
    let job = run_ok(&submit_args);
    assert!(job.trim().starts_with("job-"), "submit echoed `{job}`");
    wait_for_journal_entry(&ckpt, Duration::from_secs(60));
    server.kill().expect("SIGKILL server");
    let _ = server.wait();

    // A fresh daemon on the same journal: resubmitting the plan must
    // resume from the checkpointed benchmarks and finish the rest.
    let mut server = spawn_server(&sock, &ckpt, jobs);
    let mut resume_args = vec!["client", "--connect", &connect, "submit", "--wait"];
    resume_args.extend_from_slice(PLAN_FLAGS);
    resume_args.extend_from_slice(&["--out", got.to_str().expect("utf8 path")]);
    run_ok(&resume_args);

    let expected_bytes = std::fs::read(&expected).expect("read expected");
    let got_bytes = std::fs::read(&got).expect("read got");
    assert!(!expected_bytes.is_empty());
    assert_eq!(
        got_bytes, expected_bytes,
        "resumed document differs from the one-shot sweep (jobs={jobs})"
    );

    run_ok(&["client", "--connect", &connect, "shutdown"]);
    let status = server.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The observability acceptance run: one daemon with a JSONL oplog and
/// a timeline, two submitted plans. The oplog must be schema-valid and
/// cover every job state transition, `metrics` must reconcile with
/// `status`, the timeline must carry both jobs' lifecycle marks, and
/// both served documents must stay byte-identical to batch sweeps.
#[test]
fn observability_run_emits_schema_valid_oplog_metrics_and_timeline() {
    use serde_json::Value;

    let dir = std::env::temp_dir().join(format!("c8t-serve-obs-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let sock = dir.join("serve.sock");
    let connect = format!("unix:{}", sock.display());
    let ckpt = dir.join("ckpt");
    let oplog_path = dir.join("ops.jsonl");
    let timeline_path = dir.join("daemon-timeline.json");

    let plan_a: &[&str] = &[
        "--profiles",
        "gcc",
        "--geometries",
        "baseline",
        "--ops",
        "20000",
        "--seed",
        "7",
    ];
    let plan_b: &[&str] = &[
        "--profiles",
        "mcf",
        "--geometries",
        "baseline",
        "--ops",
        "20000",
        "--seed",
        "9",
    ];

    // Batch references for both plans.
    let mut expected = Vec::new();
    for (tag, plan) in [("a", plan_a), ("b", plan_b)] {
        let out = dir.join(format!("expected-{tag}.json"));
        let mut args = vec!["sweep"];
        args.extend_from_slice(plan);
        args.extend_from_slice(&["--trace-store", "off", "--out", out.to_str().expect("utf8")]);
        run_ok(&args);
        expected.push(out);
    }

    let mut server = cache8t()
        .args([
            "serve",
            "--listen",
            &connect,
            "--checkpoint-dir",
            &ckpt.display().to_string(),
            "--trace-store",
            "off",
            "--log-out",
            oplog_path.to_str().expect("utf8"),
            "--timeline-out",
            timeline_path.to_str().expect("utf8"),
        ])
        .env("CACHE8T_LOG", "debug")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server");

    // Submit both plans, fetch both documents.
    let mut jobs = Vec::new();
    for (tag, plan) in [("a", plan_a), ("b", plan_b)] {
        let mut args = vec!["client", "--connect", &connect, "submit"];
        args.extend_from_slice(plan);
        let job = run_ok(&args).trim().to_owned();
        assert!(job.starts_with("job-"), "submit echoed `{job}`");
        let got = dir.join(format!("got-{tag}.json"));
        run_ok(&[
            "client",
            "--connect",
            &connect,
            "fetch",
            "--job",
            &job,
            "--wait",
            "--out",
            got.to_str().expect("utf8"),
        ]);
        jobs.push((job, got));
    }
    for ((_, got), want) in jobs.iter().zip(&expected) {
        assert_eq!(
            std::fs::read(got).expect("served document"),
            std::fs::read(want).expect("batch document"),
            "served document differs from the one-shot sweep"
        );
    }

    // `metrics` reconciles with `status`, and `top --once` renders.
    let metrics: Value =
        serde_json::from_str(&run_ok(&["client", "--connect", &connect, "metrics"]))
            .expect("metrics parses");
    let status: Value = serde_json::from_str(&run_ok(&["client", "--connect", &connect, "status"]))
        .expect("status parses");
    let completed_listed = status
        .get("jobs")
        .and_then(Value::as_array)
        .expect("status jobs")
        .iter()
        .filter(|j| j.get("state").and_then(Value::as_str) == Some("completed"))
        .count() as u64;
    assert_eq!(completed_listed, 2);
    let server_block = metrics.get("server").expect("metrics server block");
    assert_eq!(
        server_block.get("jobs").and_then(|j| j.get("completed")),
        Some(&Value::U64(2)),
        "metrics job counters must reconcile with status"
    );
    assert!(
        server_block
            .get("journal")
            .and_then(|j| j.get("bytes"))
            .and_then(Value::as_u64)
            .expect("journal bytes")
            > 0,
        "checkpointed jobs must report journal growth"
    );
    assert_eq!(
        metrics
            .get("registry")
            .and_then(|r| r.get("counters"))
            .and_then(|c| c.get("serve.verb.submit.requests")),
        Some(&Value::U64(2))
    );
    let prom = run_ok(&["client", "--connect", &connect, "metrics", "--text"]);
    assert!(
        prom.contains("# TYPE cache8t_serve_jobs_completed gauge"),
        "prometheus text missing job gauge:\n{prom}"
    );
    let top = run_ok(&["top", "--connect", &connect, "--once"]);
    assert!(top.contains("completed 2"), "top frame:\n{top}");

    run_ok(&["client", "--connect", &connect, "shutdown"]);
    let code = server.wait().expect("server exit");
    assert!(code.success(), "server exited with {code}");

    // Oplog: every line schema-valid, every transition covered.
    let oplog_text = std::fs::read_to_string(&oplog_path).expect("oplog written");
    let mut states: Vec<(String, String)> = Vec::new();
    let mut events: Vec<String> = Vec::new();
    for line in oplog_text.lines() {
        let record: Value = serde_json::from_str(line).expect("oplog line parses");
        assert_eq!(record.get("v").and_then(Value::as_str), Some("1"));
        assert!(record.get("ts_ms").and_then(Value::as_u64).is_some());
        assert!(record.get("uptime_ms").and_then(Value::as_u64).is_some());
        let level = record.get("level").and_then(Value::as_str).expect("level");
        assert!(["error", "warn", "info", "debug"].contains(&level));
        let event = record.get("event").and_then(Value::as_str).expect("event");
        events.push(event.to_owned());
        if event == "state" {
            states.push((
                record
                    .get("job")
                    .and_then(Value::as_str)
                    .expect("job")
                    .to_owned(),
                record
                    .get("state")
                    .and_then(Value::as_str)
                    .expect("state")
                    .to_owned(),
            ));
        }
    }
    for (job, _) in &jobs {
        for want in ["queued", "running", "completed"] {
            assert!(
                states.contains(&(job.clone(), want.to_owned())),
                "oplog missing state `{want}` for {job}; states: {states:?}"
            );
        }
    }
    assert_eq!(events.iter().filter(|e| *e == "submit").count(), 2);
    assert!(events.contains(&"accept".to_owned()));
    assert!(events.contains(&"shutdown".to_owned()));

    // Timeline: Perfetto-loadable JSON with both jobs' lifecycle marks.
    let timeline: Value = serde_json::from_str(
        std::fs::read_to_string(&timeline_path)
            .expect("timeline written")
            .trim(),
    )
    .expect("timeline parses");
    let trace_events = timeline
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert_eq!(
        timeline.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let names: Vec<&str> = trace_events
        .iter()
        .filter(|e| e.get("cat").and_then(Value::as_str) == Some("job"))
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    for (job, _) in &jobs {
        for mark in ["queued", "running", "run", "completed"] {
            let want = format!("{job} {mark}");
            assert!(
                names.iter().any(|n| *n == want),
                "timeline missing `{want}`; job marks: {names:?}"
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_and_resumed_sweep_is_byte_identical_single_worker() {
    kill_and_resume_round_trip("1");
}

#[test]
fn killed_and_resumed_sweep_is_byte_identical_four_workers() {
    kill_and_resume_round_trip("4");
}
