//! End-to-end service test against the real `cache8t` binary: submit a
//! sweep over a unix socket, SIGKILL the daemon mid-run, restart it on
//! the same checkpoint journal, and assert the resumed document is
//! byte-identical to a one-shot `cache8t sweep` — for 1 and 4 workers.
//!
//! This is the acceptance criterion of the serve subsystem and the test
//! CI's `serve-smoke` job mirrors in shell.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const PLAN_FLAGS: &[&str] = &[
    "--profiles",
    "gcc,mcf",
    "--geometries",
    "baseline",
    "--ops",
    "20000",
    "--seed",
    "7",
];

fn cache8t() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cache8t"))
}

fn run_ok(args: &[&str]) -> String {
    let output = cache8t()
        .args(args)
        .stderr(Stdio::piped())
        .output()
        .expect("spawn cache8t");
    assert!(
        output.status.success(),
        "cache8t {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf8 stdout")
}

fn spawn_server(sock: &Path, ckpt: &Path, jobs: &str) -> Child {
    cache8t()
        .args([
            "serve",
            "--listen",
            &format!("unix:{}", sock.display()),
            "--checkpoint-dir",
            &ckpt.display().to_string(),
            "--jobs",
            jobs,
            "--trace-store",
            "off",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server")
}

/// Waits until the checkpoint dir holds a journal with at least one
/// *complete* (newline-terminated) entry, so the kill below lands after
/// some — ideally not all — benchmarks were checkpointed.
fn wait_for_journal_entry(ckpt: &Path, deadline: Duration) -> PathBuf {
    let start = Instant::now();
    loop {
        if let Ok(entries) = std::fs::read_dir(ckpt) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "jsonl") {
                    if let Ok(text) = std::fs::read_to_string(&path) {
                        if text.lines().count() >= 1 && text.contains('\n') {
                            return path;
                        }
                    }
                }
            }
        }
        assert!(
            start.elapsed() < deadline,
            "no journal entry appeared in {ckpt:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn kill_and_resume_round_trip(jobs: &str) {
    let dir = std::env::temp_dir().join(format!("c8t-serve-e2e-j{jobs}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let sock = dir.join("serve.sock");
    let connect = format!("unix:{}", sock.display());
    let ckpt = dir.join("ckpt");
    let expected = dir.join("expected.json");
    let got = dir.join("got.json");

    // The reference: a one-shot batch sweep of the same plan.
    let mut sweep_args = vec!["sweep"];
    sweep_args.extend_from_slice(PLAN_FLAGS);
    sweep_args.extend_from_slice(&[
        "--jobs",
        jobs,
        "--trace-store",
        "off",
        "--out",
        expected.to_str().expect("utf8 path"),
    ]);
    run_ok(&sweep_args);

    // Start the daemon, submit, and SIGKILL it mid-sweep — after at
    // least one benchmark hit the journal, before a clean shutdown.
    let mut server = spawn_server(&sock, &ckpt, jobs);
    let mut submit_args = vec!["client", "--connect", &connect, "submit"];
    submit_args.extend_from_slice(PLAN_FLAGS);
    let job = run_ok(&submit_args);
    assert!(job.trim().starts_with("job-"), "submit echoed `{job}`");
    wait_for_journal_entry(&ckpt, Duration::from_secs(60));
    server.kill().expect("SIGKILL server");
    let _ = server.wait();

    // A fresh daemon on the same journal: resubmitting the plan must
    // resume from the checkpointed benchmarks and finish the rest.
    let mut server = spawn_server(&sock, &ckpt, jobs);
    let mut resume_args = vec!["client", "--connect", &connect, "submit", "--wait"];
    resume_args.extend_from_slice(PLAN_FLAGS);
    resume_args.extend_from_slice(&["--out", got.to_str().expect("utf8 path")]);
    run_ok(&resume_args);

    let expected_bytes = std::fs::read(&expected).expect("read expected");
    let got_bytes = std::fs::read(&got).expect("read got");
    assert!(!expected_bytes.is_empty());
    assert_eq!(
        got_bytes, expected_bytes,
        "resumed document differs from the one-shot sweep (jobs={jobs})"
    );

    run_ok(&["client", "--connect", &connect, "shutdown"]);
    let status = server.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_and_resumed_sweep_is_byte_identical_single_worker() {
    kill_and_resume_round_trip("1");
}

#[test]
fn killed_and_resumed_sweep_is_byte_identical_four_workers() {
    kill_and_resume_round_trip("4");
}
