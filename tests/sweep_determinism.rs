//! The sweep engine's headline guarantee: the serialized sweep document
//! is byte-identical regardless of worker count, schedule, or sharding.

use std::sync::Arc;

use cache8t::exec::{
    merge_documents, run_sweep, to_document, ExecOptions, GeometryPoint, Shard, SweepOptions,
    SweepPlan, TraceStore,
};
use cache8t::trace::profiles;

/// A small but non-trivial plan: 4 profiles × 2 geometries = 8
/// benchmarks (40 unit jobs), enough for real interleaving at 8 workers.
fn plan() -> SweepPlan {
    let profiles = ["gcc", "mcf", "bwaves", "lbm"]
        .iter()
        .map(|name| profiles::by_name(name).expect("suite profile"))
        .collect();
    let geometries = vec![
        GeometryPoint::named("baseline").expect("named geometry"),
        GeometryPoint::named("small").expect("named geometry"),
    ];
    SweepPlan {
        profiles,
        geometries,
        ops: 8_000,
        seed: 11,
    }
}

fn options(workers: usize, shard: Option<Shard>) -> SweepOptions {
    SweepOptions {
        exec: ExecOptions {
            workers,
            retries: 0,
        },
        shard,
        progress: false,
        store: Arc::new(TraceStore::in_memory()),
        series: None,
        ..SweepOptions::default()
    }
}

fn document(workers: usize, shard: Option<Shard>) -> String {
    let plan = plan();
    let outcome = run_sweep(&plan, &options(workers, shard));
    assert!(
        outcome.failures.is_empty(),
        "unexpected failures: {:?}",
        outcome.failures
    );
    serde_json::to_string_pretty(&to_document(&plan, &outcome)).expect("documents serialize")
}

#[test]
fn document_is_byte_identical_across_thread_counts() {
    let serial = document(1, None);
    let parallel = document(8, None);
    assert!(
        serial.contains("\"benchmarks\""),
        "document looks malformed:\n{serial}"
    );
    assert_eq!(
        serial, parallel,
        "--jobs 1 and --jobs 8 must serialize identically"
    );
}

#[test]
fn per_benchmark_stats_match_across_thread_counts() {
    let plan = plan();
    let a = run_sweep(&plan, &options(1, None))
        .into_complete()
        .expect("complete");
    let b = run_sweep(&plan, &options(8, None))
        .into_complete()
        .expect("complete");
    for (ga, gb) in a.iter().zip(&b) {
        for (ra, rb) in ga.iter().zip(gb) {
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.rmw.array_accesses, rb.rmw.array_accesses);
            assert_eq!(ra.wgrb.array_accesses, rb.wgrb.array_accesses);
            assert_eq!(ra.conventional.stats, rb.conventional.stats);
            // Merged registry snapshots too, not just the headline stats.
            assert_eq!(
                serde_json::to_string(&ra.wg.metrics).unwrap(),
                serde_json::to_string(&rb.wg.metrics).unwrap(),
                "{} WG registry snapshot differs",
                ra.name
            );
        }
    }
}

#[test]
fn shard_documents_merge_into_the_full_document() {
    let full = document(2, None);
    let shard1 = document(2, Some(Shard { index: 0, count: 2 }));
    let shard2 = document(2, Some(Shard { index: 1, count: 2 }));
    assert_ne!(shard1, shard2, "shards must cover different benchmarks");

    let parse = |text: &str| serde_json::from_str(text).expect("documents parse");
    let merged = merge_documents(&[parse(&shard1), parse(&shard2)]).expect("shards merge");
    let merged_text = serde_json::to_string_pretty(&merged).expect("documents serialize");
    assert_eq!(
        merged_text, full,
        "merged shard documents must equal the unsharded document byte-for-byte"
    );

    // Merge order must not matter either.
    let swapped = merge_documents(&[parse(&shard2), parse(&shard1)]).expect("shards merge");
    assert_eq!(
        serde_json::to_string_pretty(&swapped).unwrap(),
        full,
        "merge must be order-insensitive"
    );
}

#[test]
fn merge_rejects_mismatched_plans() {
    let doc1 = serde_json::from_str(&document(1, None)).expect("parses");
    let mut other = plan();
    other.seed = 99;
    let outcome = run_sweep(&other, &options(1, None));
    let doc2 = to_document(&other, &outcome);
    let err = merge_documents(&[doc1, doc2]).expect_err("seed mismatch must fail");
    assert!(err.contains("seed"), "unhelpful error: {err}");
}
