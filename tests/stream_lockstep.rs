//! Streaming conformance lockstep: replaying a trace as a bounded-memory
//! chunk stream must be bit-identical to replaying the materialized trace
//! — for all five schemes of the workspace (the conform suite), at more
//! than one chunk size, including chunk seams inside the warm-up region
//! and mid-sampler-window.
//!
//! This is the lock on the streaming tentpole: any drift between the two
//! replay paths (op order, warm-up reset placement, sampler window
//! boundaries, instruction pro-rating) lands here as a field-level diff.

use std::sync::Arc;

use cache8t::conform::SchemeId;
use cache8t::core::{
    CacheBackend, CoalescingController, Controller, ConventionalController, RmwController,
    WgController, WgOptions, WgRbController,
};
use cache8t::exec::experiment::{
    run_scheme, run_scheme_sampled, run_scheme_streamed, run_scheme_streamed_sampled,
};
use cache8t::obs::sampler::{Sampler, SamplerConfig};
use cache8t::sim::{CacheGeometry, ReplacementKind};
use cache8t::trace::{ChunkedGenerator, ProfiledGenerator, Trace, TraceGenerator};

fn build(id: SchemeId) -> Box<dyn Controller> {
    let backend = CacheBackend::new(CacheGeometry::paper_baseline(), ReplacementKind::Lru);
    match id {
        SchemeId::SixT => Box::new(ConventionalController::from_backend(backend)),
        SchemeId::Rmw => Box::new(RmwController::from_backend(backend)),
        SchemeId::Wg => Box::new(WgController::from_backend(backend, WgOptions::wg())),
        SchemeId::WgRb => Box::new(WgRbController::from_backend(backend)),
        SchemeId::Coalesce(entries) => {
            Box::new(CoalescingController::from_backend(backend, entries))
        }
    }
}

fn generator(seed: u64) -> ProfiledGenerator {
    let profile = cache8t::trace::profiles::by_name("gcc").expect("gcc profile");
    ProfiledGenerator::new(profile, CacheGeometry::paper_baseline(), seed)
}

const TOTAL_OPS: u64 = 30_000;
const WARMUP_OPS: usize = 3_000;

fn materialized() -> Trace {
    generator(17).collect(TOTAL_OPS as usize)
}

fn chunks(chunk_ops: usize) -> ChunkedGenerator<ProfiledGenerator> {
    ChunkedGenerator::new(generator(17), chunk_ops, TOTAL_OPS)
}

/// Everything a controller exposes after a replay, comparable.
fn snapshot(controller: &dyn Controller) -> String {
    format!(
        "{} | {:?} | {:?} | accesses={}",
        controller.name(),
        controller.traffic(),
        controller.stats(),
        controller.array_accesses(),
    )
}

#[test]
fn all_five_schemes_stream_bit_identically() {
    let trace = materialized();
    // 1024 puts seams inside the warm-up region and mid-window; 7_000
    // puts the warm-up boundary mid-chunk; 64_000 is a single chunk.
    for chunk_ops in [1_024usize, 7_000, 64_000] {
        for id in SchemeId::default_suite() {
            let mut reference = build(id);
            run_scheme(reference.as_mut(), &trace, WARMUP_OPS);

            let mut streamed = build(id);
            run_scheme_streamed(streamed.as_mut(), chunks(chunk_ops), WARMUP_OPS);

            assert_eq!(
                snapshot(reference.as_ref()),
                snapshot(streamed.as_ref()),
                "scheme {id} diverged at chunk_ops={chunk_ops}"
            );
        }
    }
}

#[test]
fn sampled_streams_emit_identical_series_for_all_schemes() {
    #[derive(Clone)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let trace = materialized();
    let config = SamplerConfig {
        cadence: 1_024,
        ring_capacity: 32,
    };
    for id in SchemeId::default_suite() {
        let label = id.label();
        let reference_buf = SharedBuf(Arc::new(std::sync::Mutex::new(Vec::new())));
        {
            let mut sampler =
                Sampler::new("gcc", &label, config).with_writer(Box::new(reference_buf.clone()));
            let mut controller = build(id);
            run_scheme_sampled(controller.as_mut(), &trace, WARMUP_OPS, &mut sampler);
        }
        let reference = reference_buf.0.lock().unwrap().clone();
        assert!(!reference.is_empty(), "sampled replay must emit windows");
        for chunk_ops in [900usize, 4_096] {
            let buf = SharedBuf(Arc::new(std::sync::Mutex::new(Vec::new())));
            let mut sampler =
                Sampler::new("gcc", &label, config).with_writer(Box::new(buf.clone()));
            let mut controller = build(id);
            run_scheme_streamed_sampled(
                controller.as_mut(),
                chunks(chunk_ops),
                WARMUP_OPS,
                &mut sampler,
            );
            let streamed = buf.0.lock().unwrap().clone();
            assert_eq!(
                reference, streamed,
                "series bytes diverged: scheme {id}, chunk_ops={chunk_ops}"
            );
        }
    }
}
