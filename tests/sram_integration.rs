//! Integration between the bit-level SRAM array and the cache layer: the
//! physical story behind the controllers.
//!
//! These tests realize a miniature cache directly on `SramArray` rows (one
//! set per row, as the paper's Set-Buffer arrangement assumes) and verify
//! that (a) the write protocols have exactly the costs the controllers
//! charge for them, and (b) grouping at the array level preserves data
//! bit-for-bit.

use cache8t::core::{Controller, WgController};
use cache8t::sim::Address;
use cache8t::sim::{CacheGeometry, ReplacementKind};
use cache8t::sram::{ArrayConfig, CellKind, SramArray};
use cache8t::trace::MemOp;

/// A 4-set, 4-words-per-set array: each row is one (1-way) set of 32 B.
fn tiny_array() -> SramArray {
    SramArray::new(ArrayConfig::new(4, 4, 64).expect("valid config"))
}

#[test]
fn rmw_write_sequence_costs_what_the_controller_charges() {
    let mut array = tiny_array();
    array.reset_counters();
    // One store via RMW at the array level...
    array.rmw_write_word(2, 1, 0xBEEF).expect("in range");
    let c = array.counters();
    // ...is exactly the 1 row read + 1 row write the RmwController counts.
    assert_eq!(c.row_reads, 1);
    assert_eq!(c.row_writes, 1);
    assert_eq!(c.total_activations(), 2);
}

#[test]
fn grouped_writes_at_the_array_level_cost_one_rmw() {
    // Three stores to the same row, grouped the WG way: one row read into
    // the buffer, word merges off-array, one row write back.
    let mut array = tiny_array();
    array
        .write_row_full(1, &[10, 20, 30, 40])
        .expect("in range");
    array.reset_counters();

    let mut buffer: Vec<u64> = array
        .read_row(1)
        .expect("in range")
        .into_iter()
        .map(|w| w.expect("no corruption"))
        .collect();
    buffer[0] = 11;
    buffer[2] = 33;
    buffer[0] = 12; // second write to the same word, absorbed in place
    array.write_row_full(1, &buffer).expect("in range");

    assert_eq!(
        array.counters().total_activations(),
        2,
        "3 stores for the cost of 1 RMW"
    );
    assert_eq!(
        array.peek_row(1).expect("in range"),
        vec![Some(12), Some(20), Some(33), Some(40)]
    );
}

#[test]
fn ungrouped_writes_cost_one_rmw_each() {
    let mut array = tiny_array();
    array.reset_counters();
    for (row, word, value) in [(0, 0, 1u64), (1, 0, 2), (2, 0, 3)] {
        array.rmw_write_word(row, word, value).expect("in range");
    }
    assert_eq!(array.counters().total_activations(), 6);
}

#[test]
fn half_select_corruption_is_why_naive_grouping_is_unsafe() {
    // If the controller skipped the RMW read and wrote only the dirty
    // word's columns, every other word of the row would be lost.
    let mut array = tiny_array();
    array.write_row_full(0, &[1, 2, 3, 4]).expect("in range");
    array.write_word_naive(0, 1, 99).expect("in range");
    let row = array.peek_row(0).expect("in range");
    assert_eq!(row[1], Some(99));
    assert_eq!(row[0], None);
    assert_eq!(row[2], None);
    assert_eq!(row[3], None);
    assert!(array.counters().cells_corrupted > 0);
}

#[test]
fn six_t_array_needs_no_rmw_matching_conventional_controller() {
    let mut array =
        SramArray::with_kind(ArrayConfig::new(4, 4, 64).expect("valid"), CellKind::SixT);
    array.write_row_full(0, &[1, 2, 3, 4]).expect("in range");
    array.reset_counters();
    array.write_word_naive(0, 1, 99).expect("in range");
    assert_eq!(
        array.counters().total_activations(),
        1,
        "6T store = 1 activation"
    );
    assert_eq!(
        array.peek_row(0).expect("in range"),
        vec![Some(1), Some(99), Some(3), Some(4)]
    );
}

#[test]
fn controller_traffic_replays_exactly_onto_an_array() {
    // Drive a WG controller, then replay its traffic ledger as array
    // operations and check the activation count matches the controller's
    // accounting — the ledger is a faithful array-operation schedule.
    let geometry = CacheGeometry::new(256, 2, 32).expect("valid geometry");
    let mut controller = WgController::new(geometry, ReplacementKind::Lru);
    let ops = [
        MemOp::write(Address::new(0x00), 5),
        MemOp::write(Address::new(0x08), 6),
        MemOp::read(Address::new(0x00)),
        MemOp::write(Address::new(0x20), 7),
        MemOp::read(Address::new(0x20)),
    ];
    for op in &ops {
        controller.access(op);
    }
    controller.flush();
    let t = *controller.traffic();

    let config = ArrayConfig::for_cache_sets(geometry.num_sets(), geometry.set_bytes())
        .expect("valid array");
    let mut array = SramArray::new(config);
    for _ in 0..t.demand_reads + t.buffer_fills {
        array.read_row(0).expect("in range");
    }
    for _ in 0..t.writebacks + t.demand_writes {
        array
            .write_row_full(0, &vec![0; config.words_per_row()])
            .expect("in range");
    }
    assert_eq!(
        array.counters().total_activations(),
        controller.array_accesses(),
        "ledger and array activations agree"
    );
}
