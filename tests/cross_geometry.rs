//! Geometry-sensitivity shape tests (the paper's Figures 10 and 11).
//!
//! One fixed trace per benchmark (shaped at the reference geometry, as the
//! paper's Pin traces were) is replayed against different cache shapes:
//!
//! - **Figure 10**: 64 B blocks *raise* both reductions (spatial locality
//!   makes more accesses land in the buffered set);
//! - **Figure 11**: reductions are essentially insensitive to cache
//!   capacity, with a slight decrease at larger sizes.

use cache8t::sim::CacheGeometry;
use cache8t_bench::experiment::{average, run_suite, BenchmarkResult, RunConfig};

const OPS: usize = 40_000;
const SEED: u64 = 42;

fn averages(geometry: CacheGeometry) -> (f64, f64) {
    let results = run_suite(RunConfig::new(geometry, OPS, SEED));
    (
        average(&results, BenchmarkResult::wg_reduction),
        average(&results, BenchmarkResult::wgrb_reduction),
    )
}

#[test]
fn figure10_larger_blocks_raise_reductions() {
    let (wg_base, wgrb_base) = averages(CacheGeometry::paper_baseline());
    let (wg_64b, wgrb_64b) = averages(CacheGeometry::paper_large_blocks());
    // Paper §5.3: 29% / 37% at 64 B blocks vs 27% / 33% at 32 B.
    assert!(
        wg_64b > wg_base + 0.01,
        "WG should gain from 64B blocks: {wg_64b} vs {wg_base}"
    );
    assert!(
        wgrb_64b > wgrb_base + 0.02,
        "WG+RB should gain more: {wgrb_64b} vs {wgrb_base}"
    );
    assert!((wg_64b - 0.29).abs() < 0.04, "WG at 64B blocks: {wg_64b}");
    assert!(
        (wgrb_64b - 0.37).abs() < 0.04,
        "WG+RB at 64B blocks: {wgrb_64b}"
    );
}

#[test]
fn figure11_cache_size_is_second_order() {
    let (wg_32k, wgrb_32k) = averages(CacheGeometry::paper_small());
    let (wg_128k, wgrb_128k) = averages(CacheGeometry::paper_large());
    // Paper §5.3: 26.9%/26.6% (WG) and 32.6%/32.1% (WG+RB) — within a
    // point of each other across a 4x capacity change.
    assert!(
        (wg_32k - wg_128k).abs() < 0.02,
        "WG across sizes: {wg_32k} vs {wg_128k}"
    );
    assert!(
        (wgrb_32k - wgrb_128k).abs() < 0.02,
        "WG+RB across sizes: {wgrb_32k} vs {wgrb_128k}"
    );
    // The paper's slight ordering: smaller cache is marginally better.
    assert!(wg_32k >= wg_128k - 0.005);
    assert!(wgrb_32k >= wgrb_128k - 0.005);
    // Levels in the paper's neighbourhood.
    assert!((wg_32k - 0.269).abs() < 0.04, "WG at 32KB: {wg_32k}");
    assert!((wgrb_32k - 0.326).abs() < 0.04, "WG+RB at 32KB: {wgrb_32k}");
}
