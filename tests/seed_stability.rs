//! Reproducibility guarantees claimed in `EXPERIMENTS.md`:
//! identical seeds give identical results, and the suite averages are
//! stable across seeds (the synthetic workloads are stationary).

use cache8t::sim::CacheGeometry;
use cache8t_bench::experiment::{average, run_suite, BenchmarkResult, RunConfig};

const OPS: usize = 30_000;

fn averages(seed: u64) -> (f64, f64) {
    let results = run_suite(RunConfig::new(CacheGeometry::paper_baseline(), OPS, seed));
    (
        average(&results, BenchmarkResult::wg_reduction),
        average(&results, BenchmarkResult::wgrb_reduction),
    )
}

#[test]
fn identical_seeds_give_identical_results() {
    let a = run_suite(RunConfig::new(CacheGeometry::paper_baseline(), 5_000, 9));
    let b = run_suite(RunConfig::new(CacheGeometry::paper_baseline(), 5_000, 9));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.rmw.array_accesses, y.rmw.array_accesses, "{}", x.name);
        assert_eq!(x.wg.traffic, y.wg.traffic, "{}", x.name);
        assert_eq!(x.wgrb.traffic, y.wgrb.traffic, "{}", x.name);
        assert_eq!(x.stream, y.stream, "{}", x.name);
    }
}

#[test]
fn suite_averages_are_stable_across_seeds() {
    let (wg_a, wgrb_a) = averages(42);
    let (wg_b, wgrb_b) = averages(1234);
    assert!(
        (wg_a - wg_b).abs() < 0.015,
        "WG averages drift across seeds: {wg_a} vs {wg_b}"
    );
    assert!(
        (wgrb_a - wgrb_b).abs() < 0.015,
        "WG+RB averages drift across seeds: {wgrb_a} vs {wgrb_b}"
    );
}
