//! Calibration tests: the generated streams and the simulated techniques
//! land on the paper's reported numbers.
//!
//! These assert the *text-anchored* values of the paper (averages and the
//! named outliers) within tolerances that cover the statistical noise of
//! the shortened streams used in CI-sized runs. `EXPERIMENTS.md` records
//! full-length results.

use cache8t::sim::CacheGeometry;
use cache8t::trace::analyze::StreamStats;
use cache8t::trace::{profiles, ProfiledGenerator, TraceGenerator};
use cache8t_bench::experiment::{average, run_benchmark, run_suite, BenchmarkResult, RunConfig};

const OPS: usize = 40_000;
const SEED: u64 = 42;

fn suite_stats() -> Vec<(String, StreamStats)> {
    let geometry = CacheGeometry::paper_baseline();
    profiles::spec2006()
        .into_iter()
        .map(|p| {
            let name = p.name.clone();
            let trace = ProfiledGenerator::new(p, geometry, SEED).collect(OPS);
            (name, StreamStats::measure(&trace, geometry))
        })
        .collect()
}

#[test]
fn figure3_read_write_frequency_matches_paper() {
    let stats = suite_stats();
    let n = stats.len() as f64;
    let avg_reads = stats.iter().map(|(_, s)| s.read_per_instr).sum::<f64>() / n;
    let avg_writes = stats.iter().map(|(_, s)| s.write_per_instr).sum::<f64>() / n;
    // Paper §3: "on average ... 26% reads and 14% writes".
    assert!(
        (avg_reads - 0.26).abs() < 0.02,
        "avg reads/instr {avg_reads}"
    );
    assert!(
        (avg_writes - 0.14).abs() < 0.02,
        "avg writes/instr {avg_writes}"
    );
    // Paper §3: "Write frequency increases to more than 22% for
    // write-intensive applications (e.g., bwaves)".
    let bwaves = &stats
        .iter()
        .find(|(n, _)| n == "bwaves")
        .expect("bwaves present")
        .1;
    assert!(
        bwaves.write_per_instr > 0.22,
        "bwaves writes {}",
        bwaves.write_per_instr
    );
}

#[test]
fn figure4_consecutive_scenarios_match_paper() {
    let stats = suite_stats();
    let n = stats.len() as f64;
    let avg_same_set = stats
        .iter()
        .map(|(_, s)| s.consecutive.total())
        .sum::<f64>()
        / n;
    // Paper §3: "a considerable share of cache accesses (on average 27%)
    // are made to the same cache set".
    assert!(
        (avg_same_set - 0.27).abs() < 0.03,
        "avg same-set {avg_same_set}"
    );
    // Paper §5.2: "the WW share is highest (24%) for bwaves".
    let bwaves = &stats
        .iter()
        .find(|(n, _)| n == "bwaves")
        .expect("bwaves present")
        .1;
    assert!(
        (bwaves.consecutive.ww - 0.24).abs() < 0.02,
        "bwaves ww {}",
        bwaves.consecutive.ww
    );
    let max_ww = stats
        .iter()
        .map(|(_, s)| s.consecutive.ww)
        .fold(0.0f64, f64::max);
    assert!(
        bwaves.consecutive.ww >= max_ww - 1e-9,
        "bwaves has the largest WW share"
    );
}

#[test]
fn figure5_silent_writes_match_paper() {
    let stats = suite_stats();
    let n = stats.len() as f64;
    let avg = stats
        .iter()
        .map(|(_, s)| s.silent_write_fraction)
        .sum::<f64>()
        / n;
    // Paper §3: "on average more than 42% of writes are silent".
    assert!(avg > 0.42, "avg silent {avg}");
    // Paper §5.2: "silent write frequency is high (77%) in bwaves".
    let bwaves = &stats
        .iter()
        .find(|(n, _)| n == "bwaves")
        .expect("bwaves present")
        .1;
    assert!(
        (bwaves.silent_write_fraction - 0.77).abs() < 0.03,
        "bwaves silent {}",
        bwaves.silent_write_fraction
    );
}

#[test]
fn motivation_rmw_traffic_increase_matches_paper() {
    let results = run_suite(RunConfig::new(CacheGeometry::paper_baseline(), OPS, SEED));
    let avg = average(&results, BenchmarkResult::rmw_increase);
    let max = results
        .iter()
        .map(BenchmarkResult::rmw_increase)
        .fold(0.0f64, f64::max);
    // Paper §1: "RMW increases cache access frequency by more than 32% on
    // average (max 47%)".
    assert!(avg > 0.30, "avg RMW increase {avg}");
    assert!((max - 0.47).abs() < 0.04, "max RMW increase {max}");
}

#[test]
fn figure9_reductions_match_paper() {
    let results = run_suite(RunConfig::new(CacheGeometry::paper_baseline(), OPS, SEED));
    let wg = average(&results, BenchmarkResult::wg_reduction);
    let wgrb = average(&results, BenchmarkResult::wgrb_reduction);
    // Paper §5.2: "cache access frequency is reduced by 27% and 33%".
    assert!((wg - 0.27).abs() < 0.03, "avg WG reduction {wg}");
    assert!((wgrb - 0.33).abs() < 0.03, "avg WG+RB reduction {wgrb}");
    // "WG+RB outperforms WG in all benchmarks."
    for r in &results {
        assert!(r.wgrb_reduction() > r.wg_reduction(), "{}", r.name);
    }
    // "We achieve a significant cache access frequency reduction (47%) in
    // bwaves by employing WG" — and it is the maximum.
    let bwaves = results
        .iter()
        .find(|r| r.name == "bwaves")
        .expect("bwaves present");
    assert!(
        (bwaves.wg_reduction() - 0.47).abs() < 0.04,
        "bwaves WG {}",
        bwaves.wg_reduction()
    );
    let max_wg = results
        .iter()
        .map(BenchmarkResult::wg_reduction)
        .fold(0.0f64, f64::max);
    assert!(bwaves.wg_reduction() >= max_wg - 1e-9);
}

#[test]
fn figure9_beneficiaries_match_paper_narrative() {
    let results = run_suite(RunConfig::new(CacheGeometry::paper_baseline(), OPS, SEED));
    let avg_delta = average(&results, |r| r.wgrb_reduction() - r.wg_reduction());
    // Paper §5.2: gamess and cactusADM benefit more from read bypassing.
    for name in ["gamess", "cactusADM"] {
        let r = results
            .iter()
            .find(|r| r.name == name)
            .expect("benchmark present");
        let delta = r.wgrb_reduction() - r.wg_reduction();
        assert!(
            delta > avg_delta,
            "{name}: delta {delta} <= avg {avg_delta}"
        );
    }
    // Paper §5.2: wrf and lbm behave like bwaves (well above average WG).
    let avg_wg = average(&results, BenchmarkResult::wg_reduction);
    for name in ["wrf", "lbm"] {
        let r = results
            .iter()
            .find(|r| r.name == name)
            .expect("benchmark present");
        assert!(
            r.wg_reduction() > avg_wg + 0.05,
            "{name} {}",
            r.wg_reduction()
        );
    }
}

#[test]
fn single_benchmark_runner_matches_suite_entry() {
    let config = RunConfig::new(CacheGeometry::paper_baseline(), OPS, SEED);
    let suite = run_suite(config);
    let gcc_direct = run_benchmark(&profiles::by_name("gcc").expect("gcc present"), config);
    let gcc_in_suite = suite.iter().find(|r| r.name == "gcc").expect("gcc present");
    assert_eq!(
        gcc_direct.rmw.array_accesses,
        gcc_in_suite.rmw.array_accesses
    );
    assert_eq!(
        gcc_direct.wgrb.array_accesses,
        gcc_in_suite.wgrb.array_accesses
    );
}
