//! The bounded-memory regression harness for streamed replay.
//!
//! A materialized 8 M-op trace costs ~24 bytes per op (~190 MB); the
//! streamed path must replay the same ops while its peak RSS grows by no
//! more than a small multiple of the chunk size. `VmHWM` from
//! `/proc/self/status` is the process-wide high-water mark, so the
//! memory test runs the big replay first thing and compares the
//! before/after marks — the assertion fails loudly if the streamed path
//! ever silently regresses into materializing.

#![cfg(target_os = "linux")]

use cache8t::core::{CacheBackend, Controller, WgController, WgOptions};
use cache8t::exec::experiment::run_scheme_streamed;
use cache8t::exec::PrefetchedChunks;
use cache8t::sim::{CacheGeometry, ReplacementKind};
use cache8t::trace::{
    assemble_chunks, ChunkedGenerator, ProfiledGenerator, TraceGenerator, WorkloadProfile,
};

/// The gcc profile with a small working set, so the generator's own
/// shadow state (written-value map, Zipf tables) stays a few hundred
/// kilobytes and the measurement isolates the *trace* memory.
fn small_ws_profile() -> WorkloadProfile {
    let mut profile = cache8t::trace::profiles::by_name("gcc").expect("gcc profile");
    profile.working_set_blocks = 4_096;
    profile.validate().expect("shrunk profile stays valid");
    profile
}

fn controller() -> Box<dyn Controller> {
    let backend = CacheBackend::new(CacheGeometry::paper_baseline(), ReplacementKind::Lru);
    Box::new(WgController::from_backend(backend, WgOptions::wg()))
}

/// `VmHWM` (peak resident set) in kibibytes, from `/proc/self/status`.
fn peak_rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse().ok())
        .expect("VmHWM line present")
}

const BIG_OPS: u64 = 8_000_000;
const CHUNK_OPS: usize = 65_536;

#[test]
fn streamed_replay_rss_is_bounded_by_the_chunk_size() {
    let before = peak_rss_kib();

    let generator = ProfiledGenerator::new(small_ws_profile(), CacheGeometry::paper_baseline(), 23);
    let chunks = PrefetchedChunks::spawn(ChunkedGenerator::new(generator, CHUNK_OPS, BIG_OPS));
    let mut wg = controller();
    run_scheme_streamed(wg.as_mut(), chunks, BIG_OPS as usize / 10);
    let stats = *wg.stats();
    assert!(
        stats.read_hits + stats.read_misses + stats.write_hits + stats.write_misses > 0,
        "replay must actually have run: {stats:?}"
    );

    let after = peak_rss_kib();
    let growth_kib = after - before;
    // Materializing 8 M ops costs ~190 MB. Two chunks in flight plus
    // controller and generator state measure ~10 MB in practice; 64 MB
    // leaves generous headroom while still failing hard if the trace is
    // ever materialized again.
    assert!(
        growth_kib < 64 * 1024,
        "streamed replay peak RSS grew {growth_kib} KiB (> 64 MiB): \
         the bounded-memory invariant is broken"
    );
}

#[test]
fn streamed_ops_are_the_materialized_ops() {
    // The memory bound means nothing if the stream drifts: spot-check
    // byte identity at a size small enough to materialize comfortably.
    let total = 200_000u64;
    let make = || ProfiledGenerator::new(small_ws_profile(), CacheGeometry::paper_baseline(), 23);
    let expected = make().collect(total as usize);
    let assembled = assemble_chunks(ChunkedGenerator::new(make(), CHUNK_OPS, total));
    assert_eq!(assembled, expected);
}
