//! The paper's Figure 8 worked example, §4.3, replayed across all
//! controllers.
//!
//! Request stream (time order):
//! `R_a, W_b, W_b, R_b, R_b, W_b, W_a(silent), R_a`
//! where `a` and `b` are blocks in two different sets, both resident, and
//! the write to `a` stores the value already present.
//!
//! Paper-derived access totals: RMW pays `4 reads + 4 writes x 2 = 12`
//! activations; WG needs 8 (one RMW group for the `b` writes plus one
//! premature write-back, the silent `a` group never written back); WG+RB
//! needs 4 (three reads bypassed).

use cache8t::core::{Controller, RmwController, WgController, WgRbController};
use cache8t::sim::{Address, CacheGeometry, ReplacementKind};
use cache8t::trace::MemOp;

fn geometry() -> CacheGeometry {
    CacheGeometry::paper_baseline()
}

fn set_a() -> Address {
    Address::new(0x0000)
}

fn set_b() -> Address {
    Address::new(0x0020)
}

/// The Figure 8 stream. `W_a` writes 0 so it is silent against untouched
/// (zero) memory.
fn stream() -> Vec<MemOp> {
    let a = set_a();
    let b = set_b();
    vec![
        MemOp::read(a),
        MemOp::write(b, 1),
        MemOp::write(b.offset(8), 2),
        MemOp::read(b),
        MemOp::read(b),
        MemOp::write(b, 3),
        MemOp::write(a, 0),
        MemOp::read(a),
    ]
}

fn run(controller: &mut dyn Controller) -> u64 {
    // Warm both blocks so the walkthrough matches the paper's steady-state
    // narrative, then reset counters.
    controller.access(&MemOp::read(set_a()));
    controller.access(&MemOp::read(set_b()));
    controller.reset_counters();
    for op in stream() {
        controller.access(&op);
    }
    controller.array_accesses()
}

#[test]
fn addresses_map_to_distinct_sets() {
    let g = geometry();
    assert_ne!(g.set_index_of(set_a()), g.set_index_of(set_b()));
}

#[test]
fn rmw_pays_twelve_activations() {
    let mut c = RmwController::new(geometry(), ReplacementKind::Lru);
    assert_eq!(run(&mut c), 12);
    assert_eq!(c.traffic().rmw_ops, 4);
}

#[test]
fn wg_pays_eight_activations() {
    let mut c = WgController::new(geometry(), ReplacementKind::Lru);
    assert_eq!(run(&mut c), 8);
    let t = c.traffic();
    assert_eq!(t.demand_reads, 4);
    assert_eq!(t.buffer_fills, 2);
    assert_eq!(t.writebacks, 2);
    assert_eq!(t.premature_writebacks, 1);
    assert_eq!(t.grouped_writes, 2);
    assert_eq!(
        t.silent_writebacks_elided, 1,
        "the silent a-group is never deposited"
    );
}

#[test]
fn wgrb_pays_four_activations() {
    let mut c = WgRbController::new(geometry(), ReplacementKind::Lru);
    assert_eq!(run(&mut c), 4);
    let t = c.traffic();
    assert_eq!(
        t.bypassed_reads, 3,
        "both R_b and the final R_a are eliminated"
    );
    assert_eq!(t.demand_reads, 1);
}

#[test]
fn all_controllers_agree_on_values_and_final_state() {
    let g = geometry();
    let mut rmw = RmwController::new(g, ReplacementKind::Lru);
    let mut wg = WgController::new(g, ReplacementKind::Lru);
    let mut wgrb = WgRbController::new(g, ReplacementKind::Lru);
    for op in stream() {
        let v1 = rmw.access(&op).value;
        let v2 = wg.access(&op).value;
        let v3 = wgrb.access(&op).value;
        assert_eq!(v1, v2, "{op}");
        assert_eq!(v1, v3, "{op}");
    }
    wg.flush();
    wgrb.flush();
    for addr in [set_a(), set_b(), set_b().offset(8)] {
        assert_eq!(rmw.peek_word(addr), wg.peek_word(addr));
        assert_eq!(rmw.peek_word(addr), wgrb.peek_word(addr));
    }
    // Final architectural values per the stream.
    assert_eq!(rmw.peek_word(set_b()), 3);
    assert_eq!(rmw.peek_word(set_b().offset(8)), 2);
    assert_eq!(rmw.peek_word(set_a()), 0);
}
