//! Property tests: every controller is a correct cache.
//!
//! The WG/WG+RB buffering must never lose or reorder a write. These tests
//! drive random request streams through all four controllers
//! simultaneously and check, op by op, that
//!
//! 1. every read returns exactly what a flat shadow memory would return;
//! 2. all controllers report identical hit/miss behaviour;
//! 3. after `flush`, the architectural state visible through `peek_word`
//!    equals the shadow for every address ever touched.

use std::collections::HashMap;

use proptest::prelude::*;

use cache8t::core::{
    CoalescingController, Controller, ConventionalController, RmwController, WgController,
    WgOptions, WgRbController,
};
use cache8t::sim::{Address, CacheGeometry, ReplacementKind};
use cache8t::trace::MemOp;

/// A small cache (4 sets x 2 ways x 32 B) so evictions and set conflicts
/// happen constantly.
fn tiny_geometry() -> CacheGeometry {
    CacheGeometry::new(256, 2, 32).expect("valid test geometry")
}

/// Strategy: operations over a small, collision-heavy address space.
fn op_strategy() -> impl Strategy<Value = MemOp> {
    // 64 words across 16 blocks and 4 sets; values from a small domain so
    // silent writes occur organically.
    (any::<bool>(), 0u64..64, 0u64..4).prop_map(|(is_read, word, value)| {
        let addr = Address::new(word * 8);
        if is_read {
            MemOp::read(addr)
        } else {
            MemOp::write(addr, value)
        }
    })
}

fn controllers() -> Vec<Box<dyn Controller>> {
    let g = tiny_geometry();
    vec![
        Box::new(ConventionalController::new(g, ReplacementKind::Lru)),
        Box::new(RmwController::new(g, ReplacementKind::Lru)),
        Box::new(WgController::new(g, ReplacementKind::Lru)),
        Box::new(WgRbController::new(g, ReplacementKind::Lru)),
        // Ablation variants must be equally correct.
        Box::new(WgController::with_options(
            g,
            ReplacementKind::Lru,
            WgOptions {
                silent_detection: false,
                ..WgOptions::wg()
            },
        )),
        Box::new(WgController::with_options(
            g,
            ReplacementKind::Lru,
            WgOptions {
                buffer_depth: 3,
                ..WgOptions::wg_rb()
            },
        )),
        // The related-work alternative must be equally correct.
        Box::new(CoalescingController::new(g, ReplacementKind::Lru, 2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reads_always_return_last_written_value(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        let mut all = controllers();
        for op in &ops {
            let expected = if op.is_read() {
                shadow.get(&op.addr.raw()).copied().unwrap_or(0)
            } else {
                shadow.insert(op.addr.raw(), op.value);
                op.value
            };
            for c in &mut all {
                let response = c.access(op);
                prop_assert_eq!(
                    response.value,
                    expected,
                    "{} returned wrong value for {}",
                    c.name(),
                    op
                );
            }
        }
    }

    #[test]
    fn hit_miss_behaviour_is_scheme_independent(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut all = controllers();
        for op in &ops {
            let hits: Vec<bool> = all.iter_mut().map(|c| c.access(op).hit).collect();
            for (i, hit) in hits.iter().enumerate() {
                prop_assert_eq!(
                    *hit, hits[0],
                    "controller {} disagrees on hit/miss for {}",
                    all[i].name(), op
                );
            }
        }
        let reference = *all[0].stats();
        for c in &all {
            prop_assert_eq!(*c.stats(), reference, "{} stats diverge", c.name());
        }
    }

    #[test]
    fn flushed_state_matches_shadow(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        let mut all = controllers();
        for op in &ops {
            if op.is_write() {
                shadow.insert(op.addr.raw(), op.value);
            }
            for c in &mut all {
                c.access(op);
            }
        }
        for c in &mut all {
            c.flush();
        }
        for (&raw, &value) in &shadow {
            for c in &all {
                prop_assert_eq!(
                    c.peek_word(Address::new(raw)),
                    value,
                    "{} lost the write to {:#x}",
                    c.name(),
                    raw
                );
            }
        }
    }

    #[test]
    fn traffic_ordering_holds_on_write_heavy_streams(
        seed_ops in prop::collection::vec(op_strategy(), 200..400)
    ) {
        let mut all = controllers();
        for op in &seed_ops {
            for c in &mut all {
                c.access(op);
            }
        }
        for c in &mut all {
            c.flush();
        }
        let accesses: HashMap<&str, u64> = [
            ("6T", all[0].array_accesses()),
            ("RMW", all[1].array_accesses()),
            ("WG", all[2].array_accesses()),
            ("WG+RB", all[3].array_accesses()),
        ]
        .into();
        // RMW never beats the conventional cache; grouping never exceeds RMW;
        // read bypassing never exceeds plain grouping.
        prop_assert!(accesses["RMW"] >= accesses["6T"]);
        prop_assert!(accesses["WG"] <= accesses["RMW"]);
        prop_assert!(accesses["WG+RB"] <= accesses["WG"]);
        // Line fills are a property of the functional cache (identical
        // residency), not of the write scheme.
        let fills: Vec<u64> = all.iter().map(|c| c.traffic().line_fills).collect();
        for (i, c) in all.iter().enumerate() {
            prop_assert_eq!(fills[i], fills[0], "{} fills diverge", c.name());
        }
        // Dirty evictions may only *shrink* under the buffering schemes:
        // silent-write elision leaves lines clean that RMW would have
        // dirtied with identical data (memory state stays equal either
        // way, which flushed_state_matches_shadow verifies).
        let rmw_evictions = all[1].traffic().eviction_writebacks;
        prop_assert_eq!(all[0].traffic().eviction_writebacks, rmw_evictions);
        for c in &all[2..] {
            prop_assert!(
                c.traffic().eviction_writebacks <= rmw_evictions,
                "{} wrote back more dirty victims than RMW",
                c.name()
            );
        }
    }
}
