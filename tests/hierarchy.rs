//! Two-level-hierarchy tests: adding an L2 behind the controllers changes
//! where misses are served from, but must not change any of the paper's
//! L1-level results.

use std::collections::HashMap;

use cache8t::core::{
    CacheBackend, CoalescingController, Controller, ConventionalController, RmwController,
    WgController, WgOptions, WgRbController,
};
use cache8t::sim::{Address, CacheGeometry, ReplacementKind};
use cache8t::trace::{profiles, MemOp, ProfiledGenerator, Trace, TraceGenerator};

fn l1() -> CacheGeometry {
    CacheGeometry::new(4 * 1024, 2, 32).expect("small L1")
}

fn l2() -> CacheGeometry {
    CacheGeometry::new(64 * 1024, 8, 32).expect("bigger L2")
}

fn trace() -> Trace {
    ProfiledGenerator::new(
        profiles::by_name("gcc").expect("gcc present"),
        CacheGeometry::paper_baseline(),
        21,
    )
    .collect(40_000)
}

fn flat_and_hierarchical(
    build: &dyn Fn(CacheBackend) -> Box<dyn Controller>,
) -> [Box<dyn Controller>; 2] {
    [
        build(CacheBackend::new(l1(), ReplacementKind::Lru)),
        build(CacheBackend::with_l2(l1(), l2(), ReplacementKind::Lru)),
    ]
}

type Builder = Box<dyn Fn(CacheBackend) -> Box<dyn Controller>>;

#[test]
fn l2_is_invisible_to_l1_traffic_and_stats() {
    let trace = trace();
    let builders: Vec<(&str, Builder)> = vec![
        (
            "6T",
            Box::new(|b| Box::new(ConventionalController::from_backend(b))),
        ),
        (
            "RMW",
            Box::new(|b| Box::new(RmwController::from_backend(b))),
        ),
        (
            "WG",
            Box::new(|b| Box::new(WgController::from_backend(b, WgOptions::wg()))),
        ),
        (
            "WG+RB",
            Box::new(|b| Box::new(WgRbController::from_backend(b))),
        ),
        (
            "CoalesceWB",
            Box::new(|b| Box::new(CoalescingController::from_backend(b, 4))),
        ),
    ];
    for (name, build) in &builders {
        let [mut flat, mut layered] = flat_and_hierarchical(build.as_ref());
        for op in &trace {
            let a = flat.access(op);
            let b = layered.access(op);
            assert_eq!(a.value, b.value, "{name}: value diverges at {op}");
            assert_eq!(a.hit, b.hit, "{name}: hit diverges at {op}");
        }
        flat.flush();
        layered.flush();
        assert_eq!(
            flat.traffic(),
            layered.traffic(),
            "{name}: the L2 must not change L1 array traffic"
        );
        assert_eq!(
            flat.stats(),
            layered.stats(),
            "{name}: request stats diverge"
        );
    }
}

#[test]
fn hierarchy_preserves_architectural_state() {
    let mut shadow: HashMap<u64, u64> = HashMap::new();
    let mut c =
        WgRbController::from_backend(CacheBackend::with_l2(l1(), l2(), ReplacementKind::Lru));
    for op in &trace() {
        if op.is_write() {
            shadow.insert(op.addr.raw(), op.value);
        }
        let response = c.access(op);
        if op.is_read() {
            let expected = shadow.get(&op.addr.raw()).copied().unwrap_or(0);
            assert_eq!(response.value, expected, "{op}");
        }
    }
    c.flush();
    for (&raw, &value) in &shadow {
        assert_eq!(c.peek_word(Address::new(raw)), value, "{raw:#x}");
    }
}

#[test]
fn l2_absorbs_l1_victims() {
    // Write a block, thrash it out of the tiny L1, and check the L2 still
    // holds the dirty data while memory has not seen it.
    let backend = CacheBackend::with_l2(l1(), l2(), ReplacementKind::Lru);
    let mut c = RmwController::from_backend(backend);
    let a = Address::new(0x40);
    c.access(&MemOp::write(a, 77));
    // Two conflicting blocks evict `a` from the 2-way L1 (4 KB -> 64 sets,
    // conflict stride 64 sets x 32 B = 2 KB).
    c.access(&MemOp::read(a.offset(2048)));
    c.access(&MemOp::read(a.offset(4096)));
    assert!(c.cache().probe(a).is_none(), "a left the L1");
    assert_eq!(
        c.memory().read_word(a),
        0,
        "memory never saw the dirty block"
    );
    assert_eq!(c.peek_word(a), 77, "the L2 holds the victim");
    // A re-read comes back from the L2 with the written value.
    let r = c.access(&MemOp::read(a));
    assert_eq!(r.value, 77);
}

#[test]
#[should_panic(expected = "share a block size")]
fn mismatched_block_sizes_rejected() {
    let bad_l2 = CacheGeometry::new(64 * 1024, 8, 64).expect("valid geometry");
    let _ = CacheBackend::with_l2(l1(), bad_l2, ReplacementKind::Lru);
}

#[test]
#[should_panic(expected = "not be smaller")]
fn undersized_l2_rejected() {
    let tiny = CacheGeometry::new(1024, 2, 32).expect("valid geometry");
    let _ = CacheBackend::with_l2(l1(), tiny, ReplacementKind::Lru);
}

#[test]
fn l2_accessor_reports_presence() {
    let flat = CacheBackend::new(l1(), ReplacementKind::Lru);
    assert!(flat.l2().is_none());
    let layered = CacheBackend::with_l2(l1(), l2(), ReplacementKind::Lru);
    assert_eq!(layered.l2().expect("L2 present").geometry(), l2());
}
