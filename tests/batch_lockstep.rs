//! Batched-replay conformance lockstep: servicing pre-decoded op batches
//! through `Controller::access_batch` must be bit-identical to servicing
//! the same ops one at a time through `access` — for all five schemes,
//! at several batch sizes, with the warm-up counter reset landing on and
//! off batch seams.
//!
//! This is the lock on the batched-kernel tentpole: any drift between
//! the decoded fast paths (branchless probe, pre-split set/tag/word
//! columns, block-granularity compares) and the per-op reference lands
//! here as a field-level diff.

use cache8t::conform::SchemeId;
use cache8t::core::{
    CacheBackend, CoalescingController, Controller, ConventionalController, RmwController,
    WgController, WgOptions, WgRbController,
};
use cache8t::exec::replay_ops_batched;
use cache8t::sim::{CacheGeometry, ReplacementKind};
use cache8t::trace::{DecodedBatch, ProfiledGenerator, Trace, TraceGenerator};

fn build(id: SchemeId) -> Box<dyn Controller> {
    let backend = CacheBackend::new(CacheGeometry::paper_baseline(), ReplacementKind::Lru);
    match id {
        SchemeId::SixT => Box::new(ConventionalController::from_backend(backend)),
        SchemeId::Rmw => Box::new(RmwController::from_backend(backend)),
        SchemeId::Wg => Box::new(WgController::from_backend(backend, WgOptions::wg())),
        SchemeId::WgRb => Box::new(WgRbController::from_backend(backend)),
        SchemeId::Coalesce(entries) => {
            Box::new(CoalescingController::from_backend(backend, entries))
        }
    }
}

const TOTAL_OPS: usize = 30_000;
const WARMUP_OPS: usize = 3_000;

fn materialized() -> Trace {
    let profile = cache8t::trace::profiles::by_name("gcc").expect("gcc profile");
    ProfiledGenerator::new(profile, CacheGeometry::paper_baseline(), 17).collect(TOTAL_OPS)
}

/// Everything a controller exposes after a replay, comparable — plus the
/// architecturally-visible word image at a sample of trace addresses, so
/// a fast path that corrupted buffered data (not just counters) is
/// caught too.
fn snapshot(controller: &dyn Controller, trace: &Trace) -> String {
    let words: Vec<u64> = trace
        .ops()
        .iter()
        .step_by(997)
        .map(|op| controller.peek_word(op.addr))
        .collect();
    format!(
        "{} | {:?} | {:?} | accesses={} | words={words:?}",
        controller.name(),
        controller.traffic(),
        controller.stats(),
        controller.array_accesses(),
    )
}

/// Per-op reference replay: the exact loop the batched paths must match.
fn replay_per_op(controller: &mut dyn Controller, trace: &Trace, warmup_ops: usize) {
    for (i, op) in trace.iter().enumerate() {
        if i == warmup_ops {
            controller.reset_counters();
        }
        controller.access(op);
    }
    controller.flush();
}

#[test]
fn access_batch_matches_per_op_for_all_schemes() {
    let trace = materialized();
    // 1_024 puts the warm-up reset exactly on a batch seam; 7_000 puts
    // it mid-batch; 64_000 is a single batch covering the whole trace.
    for batch_ops in [1_024usize, 7_000, 64_000] {
        for id in SchemeId::default_suite() {
            let mut reference = build(id);
            replay_per_op(reference.as_mut(), &trace, WARMUP_OPS);

            let mut batched = build(id);
            let mut batch = DecodedBatch::new(CacheGeometry::paper_baseline());
            let mut index = 0usize;
            for sub in trace.ops().chunks(batch_ops) {
                let end = index + sub.len();
                batch.decode(sub);
                if index <= WARMUP_OPS && WARMUP_OPS < end {
                    let split = WARMUP_OPS - index;
                    batched.access_batch(&batch, 0..split);
                    batched.reset_counters();
                    batched.access_batch(&batch, split..sub.len());
                } else {
                    batched.access_batch(&batch, 0..sub.len());
                }
                index = end;
            }
            batched.flush();

            assert_eq!(
                snapshot(reference.as_ref(), &trace),
                snapshot(batched.as_ref(), &trace),
                "scheme {id} diverged at batch_ops={batch_ops}"
            );
        }
    }
}

#[test]
fn replay_helper_matches_per_op_for_all_schemes() {
    let trace = materialized();
    for id in SchemeId::default_suite() {
        let mut reference = build(id);
        replay_per_op(reference.as_mut(), &trace, WARMUP_OPS);

        // Whole-trace invocation, as `run_scheme` performs it.
        let mut whole = build(id);
        let mut batch = DecodedBatch::new(CacheGeometry::paper_baseline());
        replay_ops_batched(
            whole.as_mut(),
            trace.ops(),
            0,
            WARMUP_OPS as u64,
            &mut batch,
        );
        whole.flush();
        assert_eq!(
            snapshot(reference.as_ref(), &trace),
            snapshot(whole.as_ref(), &trace),
            "scheme {id}: whole-trace batched replay diverged"
        );

        // Chunked invocation with running base indices, as the streamed
        // runner performs it — 7_000 keeps the warm-up boundary inside
        // the first chunk and off every 8_192-op sub-batch seam.
        let mut chunked = build(id);
        let mut index = 0u64;
        for sub in trace.ops().chunks(7_000) {
            replay_ops_batched(chunked.as_mut(), sub, index, WARMUP_OPS as u64, &mut batch);
            index += sub.len() as u64;
        }
        chunked.flush();
        assert_eq!(
            snapshot(reference.as_ref(), &trace),
            snapshot(chunked.as_ref(), &trace),
            "scheme {id}: chunked batched replay diverged"
        );
    }
}

#[test]
fn warmup_boundary_cases_match_per_op() {
    let trace = materialized();
    // 0 resets before the very first op; TOTAL_OPS is past the last op
    // and must never reset; 8_192 lands exactly on a sub-batch seam of
    // the replay helper.
    for warmup in [0usize, 8_192, TOTAL_OPS] {
        for id in SchemeId::default_suite() {
            let mut reference = build(id);
            replay_per_op(reference.as_mut(), &trace, warmup);

            let mut batched = build(id);
            let mut batch = DecodedBatch::new(CacheGeometry::paper_baseline());
            replay_ops_batched(batched.as_mut(), trace.ops(), 0, warmup as u64, &mut batch);
            batched.flush();

            assert_eq!(
                snapshot(reference.as_ref(), &trace),
                snapshot(batched.as_ref(), &trace),
                "scheme {id} diverged at warmup={warmup}"
            );
        }
    }
}

#[test]
#[should_panic(expected = "batch decoded against a different geometry")]
fn mismatched_geometry_is_rejected() {
    let trace = materialized();
    let mut batch = DecodedBatch::new(CacheGeometry::new(8 * 1024, 2, 32).unwrap());
    batch.decode(trace.ops());
    let mut controller = build(SchemeId::SixT);
    controller.access_batch(&batch, 0..batch.len());
}
