//! Cross-crate integration: timing model + energy model on real
//! controller traffic (the paper's §5.5 arguments end to end).

use cache8t::core::{Controller, RmwController, WgController, WgRbController};
use cache8t::cpu::{PortTimingModel, TimingConfig};
use cache8t::energy::dvfs::DvfsLadder;
use cache8t::energy::power::SchemeEnergy;
use cache8t::energy::{ArrayModel, CellKind, TechnologyNode};
use cache8t::sim::{CacheGeometry, ReplacementKind};
use cache8t::trace::{profiles, ProfiledGenerator, Trace, TraceGenerator};

fn trace() -> Trace {
    ProfiledGenerator::new(
        profiles::by_name("bwaves").expect("bwaves present"),
        CacheGeometry::paper_baseline(),
        5,
    )
    .collect(60_000)
}

#[test]
fn section55_performance_direction_holds() {
    let g = CacheGeometry::paper_baseline();
    let t = trace();
    let model = PortTimingModel::new(TimingConfig::default());
    let rmw = model.run(&mut RmwController::new(g, ReplacementKind::Lru), &t);
    let wg = model.run(&mut WgController::new(g, ReplacementKind::Lru), &t);
    let wgrb = model.run(&mut WgRbController::new(g, ReplacementKind::Lru), &t);

    // §5.5: WG's performance cost is negligible; WG+RB improves loads.
    assert!(wg.avg_read_latency() <= rmw.avg_read_latency() * 1.05);
    assert!(wgrb.avg_read_latency() < rmw.avg_read_latency());
    // §4.1: read-port availability increases monotonically.
    assert!(rmw.read_port_availability() < wg.read_port_availability());
    assert!(wg.read_port_availability() < wgrb.read_port_availability());
}

#[test]
fn section55_power_direction_holds() {
    let g = CacheGeometry::paper_baseline();
    let t = trace();
    let node = TechnologyNode::nm32();
    let model = ArrayModel::for_cache(g, node, CellKind::EightT);
    let v = node.vdd_nominal();

    let mut rmw = RmwController::new(g, ReplacementKind::Lru);
    let mut wg = WgController::new(g, ReplacementKind::Lru);
    let mut wgrb = WgRbController::new(g, ReplacementKind::Lru);
    for op in &t {
        rmw.access(op);
        wg.access(op);
        wgrb.access(op);
    }
    for c in [&mut rmw as &mut dyn Controller, &mut wg, &mut wgrb] {
        c.flush();
    }

    let e_rmw = SchemeEnergy::price(rmw.traffic(), &model, v);
    let e_wg = SchemeEnergy::price(wg.traffic(), &model, v);
    let e_wgrb = SchemeEnergy::price(wgrb.traffic(), &model, v);
    // §5.5: both techniques reduce overall power; WG+RB reduces more.
    assert!(e_wg.total() < e_rmw.total());
    assert!(e_wgrb.total() < e_wg.total());
    // The buffer's own energy stays a small fraction of the saving.
    let saving = e_rmw.total().value() - e_wgrb.total().value();
    assert!(e_wgrb.buffer.value() < 0.1 * saving);
}

#[test]
fn energy_savings_compose_with_dvfs() {
    let g = CacheGeometry::paper_baseline();
    let node = TechnologyNode::nm32();
    let model = ArrayModel::for_cache(g, node, CellKind::EightT);
    let ladder = DvfsLadder::for_cache(node, CellKind::EightT, 8);

    let mut wgrb = WgRbController::new(g, ReplacementKind::Lru);
    for op in &trace() {
        wgrb.access(op);
    }
    wgrb.flush();

    let at_nominal = SchemeEnergy::price(wgrb.traffic(), &model, node.vdd_nominal());
    let at_floor = SchemeEnergy::price(wgrb.traffic(), &model, ladder.lowest().voltage);
    let scale = at_floor.total() / at_nominal.total();
    let expected = ladder.lowest().relative_energy_per_op;
    assert!(
        (scale - expected).abs() < 1e-9,
        "V^2 scaling should compose exactly: {scale} vs {expected}"
    );
}
