//! End-to-end test of the `cache8t` CLI binary: generate → analyze →
//! simulate through real process invocations.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cache8t"))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cache8t-e2e");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = cli().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn list_profiles_shows_all_25() {
    let out = cli().arg("list-profiles").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bwaves"));
    assert!(stdout.contains("cactusADM"));
    // Header + 25 rows.
    assert_eq!(stdout.lines().count(), 26, "{stdout}");
}

#[test]
fn gen_analyze_simulate_pipeline() {
    let trace_path = temp_path("pipeline.c8tt");
    let trace_arg = trace_path.to_string_lossy().to_string();

    let out = cli()
        .args([
            "gen",
            "--profile",
            "bwaves",
            "--ops",
            "20000",
            "--out",
            &trace_arg,
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote 20000 ops"));

    let out = cli()
        .args(["analyze", "--trace", &trace_arg])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("reads/instr"), "{stdout}");

    // The same trace through two schemes: WG+RB must issue fewer array
    // accesses than RMW.
    let accesses = |scheme: &str| -> u64 {
        let out = cli()
            .args(["simulate", "--scheme", scheme, "--trace", &trace_arg])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .find(|l| l.contains("array accesses"))
            .expect("traffic line present");
        line.split("array accesses ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unparseable traffic line: {line}"))
    };
    let rmw = accesses("rmw");
    let wgrb = accesses("wg+rb");
    assert!(wgrb < rmw, "WG+RB {wgrb} should be below RMW {rmw}");

    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn simulate_accepts_custom_geometry() {
    let out = cli()
        .args([
            "simulate",
            "--scheme",
            "wg",
            "--profile",
            "gcc",
            "--ops",
            "5000",
            "--cache",
            "32,4,64",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("32KB/4-way/64B"));
}

#[test]
fn bad_inputs_fail_cleanly() {
    for args in [
        vec!["simulate", "--scheme", "bogus", "--profile", "gcc"],
        vec!["simulate", "--scheme", "wg", "--profile", "not-a-benchmark"],
        vec!["analyze", "--trace", "/nonexistent/path.c8tt"],
        vec!["gen", "--profile", "gcc"], // missing --out
        vec!["frobnicate"],
    ] {
        let out = cli().args(&args).output().expect("binary runs");
        assert!(!out.status.success(), "args {args:?} should fail");
        assert!(!out.stderr.is_empty(), "args {args:?} should explain");
    }
}
