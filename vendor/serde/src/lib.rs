//! Offline stand-in for `serde`.
//!
//! The real serde cannot be fetched in this build environment, so this
//! crate provides the subset the workspace uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, and a JSON value tree
//! ([`Value`]) that `serde_json` (the sibling stand-in) renders and
//! parses. Instead of serde's visitor architecture, [`Serialize`]
//! converts a type straight into a [`Value`] and [`Deserialize`] reads
//! one back — a model that is simpler, fully sufficient for JSON, and
//! keeps derive-macro expansion small.
//!
//! Field-level `#[serde(skip)]` and container-level
//! `#[serde(transparent)]` are honoured by the derive macro; newtype
//! (single-field tuple) structs serialize as their inner value, matching
//! serde's default.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON document: the data model both traits target.
///
/// Objects preserve insertion order (serialization) and tolerate any
/// order on input.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            _ => None,
        }
    }

    /// The value as a float (integers convert losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Looks up `key` in an object (`None` for other shapes).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization failure: a human-readable description of the shape
/// mismatch or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization failed: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the JSON data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_json_value(&self) -> Value;
}

/// Reconstruction from the JSON data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `value` has the wrong shape.
    fn from_json_value(value: &Value) -> Result<Self, DeError>;
}

/// Fetches a field from an object's entries (derive-macro support).
#[doc(hidden)]
pub fn __field<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{key}`")))
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError(format!("expected bool, found {value:?}")))
    }
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| DeError(format!("expected unsigned integer, found {value:?}")))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }

        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| DeError(format!("expected integer, found {value:?}")))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError(format!("expected number, found {value:?}")))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        f64::from_json_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError(format!("expected string, found {value:?}")))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError(format!("expected array, found {value:?}")))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        // Sort for stable output; HashMap iteration order is arbitrary.
        let mut entries: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError(format!("expected object, found {value:?}")))?
            .iter()
            .map(|(k, v)| V::from_json_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError(format!("expected array, found {value:?}")))?;
                Ok(($($name::from_json_value(
                    items.get($idx).ok_or_else(|| DeError("tuple too short".into()))?,
                )?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_json_value(&42u64.to_json_value()), Ok(42));
        assert_eq!(i32::from_json_value(&(-7i32).to_json_value()), Ok(-7));
        assert_eq!(bool::from_json_value(&true.to_json_value()), Ok(true));
        assert_eq!(
            String::from_json_value(&"hi".to_string().to_json_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u64>::from_json_value(&vec![1u64, 2, 3].to_json_value()),
            Ok(vec![1, 2, 3])
        );
        assert_eq!(Option::<u64>::from_json_value(&Value::Null), Ok(None));
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u64::from_json_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_json_value(&Value::U64(1)).is_err());
        assert!(u8::from_json_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b"), None);
        assert_eq!(Value::I64(-3).as_f64(), Some(-3.0));
    }
}
