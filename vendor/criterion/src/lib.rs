//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API used by this workspace's
//! `harness = false` benches: [`Criterion::default`], `sample_size`,
//! `benchmark_group`, `throughput`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId::from_parameter`], `finish`,
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: each sample times `iters` iterations of the
//! closure (iteration count auto-scaled so one sample takes roughly
//! `target_sample_ms`), reports median/min/max ns per iteration, and —
//! when a [`Throughput`] is set — median elements per second. This is a
//! simple wall-clock harness, not a statistical engine; numbers are
//! comparable across runs on the same quiet machine, which is what the
//! in-repo before/after comparisons need.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque blocker preventing the optimizer from deleting a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration declaration, used for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Benchmark identifier; only the rendered text matters here.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// `BenchmarkId::from_parameter(parameter)`.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    samples: usize,
    target_sample_ms: u64,
    /// Collected ns-per-iteration samples, one per timing sample.
    results_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, collecting `samples` wall-clock samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and find an iteration count giving a sample of
        // roughly target_sample_ms so short routines are not dominated
        // by timer quanta.
        let mut iters: u64 = 1;
        let target = Duration::from_millis(self.target_sample_ms);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 30 {
                break;
            }
            let grow = if elapsed.as_micros() == 0 {
                100
            } else {
                let needed = target.as_micros() / elapsed.as_micros().max(1);
                needed.clamp(2, 100) as u64
            };
            iters = iters.saturating_mul(grow);
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.results_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.criterion.sample_size = samples.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.criterion.sample_size,
            target_sample_ms: self.criterion.target_sample_ms,
            results_ns: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher.results_ns);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting happens per-benchmark).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples_ns: &[f64]) {
        if samples_ns.is_empty() {
            println!("{}/{id}: no samples collected", self.name);
            return;
        }
        let mut sorted = samples_ns.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(
                    "  thrpt: {:>11} elem/s",
                    format_rate(n as f64 / (median * 1e-9))
                )
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  thrpt: {:>11} B/s",
                    format_rate(n as f64 / (median * 1e-9))
                )
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: time: [{} {} {}]{rate}",
            self.name,
            format_ns(min),
            format_ns(median),
            format_ns(max),
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

fn format_rate(per_s: f64) -> String {
    if per_s >= 1e9 {
        format!("{:.4} G", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.4} M", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.4} K", per_s / 1e3)
    } else {
        format!("{per_s:.4}")
    }
}

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    target_sample_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            target_sample_ms: 50,
        }
    }
}

impl Criterion {
    /// Sets samples collected per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id.to_string())
            .bench_function("run", f);
        self
    }

    /// Compatibility no-op (real criterion parses CLI args here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Compatibility no-op for the `criterion_main!` flow.
    pub fn final_summary(&self) {}
}

/// Declares a benchmark group binding, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main`, tolerating cargo's extra CLI arguments
/// (e.g. `--bench`) which are irrelevant to this harness.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo test runs bench targets with `--test`; skip
            // measurement there so `cargo test` stays fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::from_parameter("wg").to_string(), "wg");
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
    }
}
