//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! The build environment has no access to crates.io, so `syn`/`quote`
//! are unavailable; the input item is parsed directly from the
//! `proc_macro` token stream. Supported shapes — which cover every
//! derived type in this workspace — are:
//!
//! - structs with named fields (field-level `#[serde(skip)]` honoured:
//!   omitted on serialize, `Default::default()` on deserialize);
//! - tuple structs (a single-field newtype serializes as its inner
//!   value, as serde does; `#[serde(transparent)]` is therefore
//!   implied);
//! - enums with unit, newtype, tuple, and struct variants, externally
//!   tagged exactly like serde (`"Variant"` for unit variants,
//!   `{"Variant": ...}` otherwise).
//!
//! Generic types are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: its name (or tuple index) and whether it is
/// `#[serde(skip)]`ped.
struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    NamedStruct { fields: Vec<Field> },
    TupleStruct { arity: usize },
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple { arity: usize },
    Struct { fields: Vec<Field> },
}

struct Item {
    name: String,
    shape: Shape,
}

/// Splits a token list on top-level commas.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    for tree in tokens {
        match tree {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                out.push(std::mem::take(&mut current));
            }
            other => current.push(other.clone()),
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out.retain(|chunk| !chunk.is_empty());
    out
}

/// Consumes leading `#[...]` attributes, returning `true` if any was
/// `#[serde(skip)]`.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while *pos + 1 < tokens.len() {
        let is_hash = matches!(&tokens[*pos], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        if let TokenTree::Group(g) = &tokens[*pos + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let text = g.stream().to_string();
                if text.starts_with("serde") && text.contains("skip") {
                    skip = true;
                }
                *pos += 2;
                continue;
            }
        }
        break;
    }
    skip
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn take_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens[*pos], TokenTree::Ident(i) if i.to_string() == "pub") {
        *pos += 1;
        if *pos < tokens.len() {
            if let TokenTree::Group(g) = &tokens[*pos] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Parses the fields of a braced field list (struct body or struct
/// variant body).
fn parse_named_fields(group_tokens: Vec<TokenTree>) -> Vec<Field> {
    split_commas(&group_tokens)
        .into_iter()
        .map(|chunk| {
            let mut pos = 0;
            let skip = take_attrs(&chunk, &mut pos);
            take_visibility(&chunk, &mut pos);
            let name = match &chunk[pos] {
                TokenTree::Ident(i) => i.to_string(),
                other => panic!("serde stand-in derive: expected field name, found `{other}`"),
            };
            Field { name, skip }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    take_attrs(&tokens, &mut pos);
    take_visibility(&tokens, &mut pos);

    let keyword = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde stand-in derive: expected `struct` or `enum`, found `{other}`"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde stand-in derive: expected type name, found `{other}`"),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive: generic type `{name}` is not supported");
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                fields: parse_named_fields(g.stream().into_iter().collect()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let elems: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::TupleStruct {
                    arity: split_commas(&elems).len(),
                }
            }
            other => panic!("serde stand-in derive: unsupported struct body {other:?}"),
        },
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde stand-in derive: expected enum body, found {other:?}"),
            };
            let variants = split_commas(&body.into_iter().collect::<Vec<_>>())
                .into_iter()
                .map(|chunk| {
                    let mut vpos = 0;
                    take_attrs(&chunk, &mut vpos);
                    let vname = match &chunk[vpos] {
                        TokenTree::Ident(i) => i.to_string(),
                        other => panic!("serde stand-in derive: expected variant, found `{other}`"),
                    };
                    vpos += 1;
                    let kind = match chunk.get(vpos) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            VariantKind::Struct {
                                fields: parse_named_fields(g.stream().into_iter().collect()),
                            }
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let elems: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantKind::Tuple {
                                arity: split_commas(&elems).len(),
                            }
                        }
                        _ => VariantKind::Unit,
                    };
                    Variant { name: vname, kind }
                })
                .collect();
            Shape::Enum { variants }
        }
        other => panic!("serde stand-in derive: cannot derive for `{other}` items"),
    };

    Item { name, shape }
}

/// Implements `serde::Serialize` (the stand-in's value-tree form).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct { fields } => {
            let mut code =
                String::from("let mut __entries: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                code.push_str(&format!(
                    "__entries.push((String::from(\"{0}\"), ::serde::Serialize::to_json_value(&self.{0})));\n",
                    f.name
                ));
            }
            code.push_str("::serde::Value::Object(__entries)");
            code
        }
        Shape::TupleStruct { arity: 1 } => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple { arity: 1 } => arms.push_str(&format!(
                        "{name}::{v}(__t0) => ::serde::Value::Object(vec![(String::from(\"{v}\"), ::serde::Serialize::to_json_value(__t0))]),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple { arity } => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__t{i}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![(String::from(\"{v}\"), ::serde::Value::Array(vec![{elems}]))]),\n",
                            v = v.name,
                            binds = binders.join(", "),
                            elems = elems.join(", ")
                        ));
                    }
                    VariantKind::Struct { fields } => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "__fields.push((String::from(\"{0}\"), ::serde::Serialize::to_json_value({0})));",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{ let mut __fields: Vec<(String, ::serde::Value)> = Vec::new(); {pushes} ::serde::Value::Object(vec![(String::from(\"{v}\"), ::serde::Value::Object(__fields))]) }},\n",
                            v = v.name,
                            binds = binds.join(", "),
                            pushes = pushes.join(" ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
        }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Implements `serde::Deserialize` (the stand-in's value-tree form).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct { fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::Deserialize::from_json_value(::serde::__field(__entries, \"{0}\")?)?,\n",
                        f.name
                    ));
                }
            }
            format!(
                "let __entries = __v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                    concat!(\"expected object for \", stringify!({name}))))?;\n\
                Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct { arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_json_value(__v)?))")
        }
        Shape::TupleStruct { arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_json_value(__items.get({i}).ok_or_else(|| ::serde::DeError::custom(\"tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| ::serde::DeError::custom(\
                    concat!(\"expected array for \", stringify!({name}))))?;\n\
                Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Enum { variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple { arity: 1 } => data_arms.push_str(&format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_json_value(__inner)?)),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple { arity } => {
                        let elems: Vec<String> = (0..*arity)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_json_value(__items.get({i}).ok_or_else(|| ::serde::DeError::custom(\"variant tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{ let __items = __inner.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array variant\"))?; Ok({name}::{v}({elems})) }},\n",
                            v = v.name,
                            elems = elems.join(", ")
                        ));
                    }
                    VariantKind::Struct { fields } => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::core::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{0}: ::serde::Deserialize::from_json_value(::serde::__field(__fields, \"{0}\")?)?,\n",
                                    f.name
                                ));
                            }
                        }
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{ let __fields = __inner.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected struct variant object\"))?; Ok({name}::{v} {{\n{inits}}}) }},\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                    ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                        {unit_arms}\
                        __other => Err(::serde::DeError::custom(format!(\
                            \"unknown variant `{{__other}}` for {name}\"))),\n\
                    }},\n\
                    ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                        let (__k, __inner) = &__entries[0];\n\
                        let _ = __inner;\n\
                        match __k.as_str() {{\n\
                            {data_arms}\
                            __other => Err(::serde::DeError::custom(format!(\
                                \"unknown variant `{{__other}}` for {name}\"))),\n\
                        }}\n\
                    }},\n\
                    __other => Err(::serde::DeError::custom(format!(\
                        \"bad enum shape for {name}: {{__other:?}}\"))),\n\
                }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_json_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
        }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
