//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without network access to
//! crates.io, so the handful of `rand` 0.8 APIs it relies on are
//! reimplemented here: [`rngs::SmallRng`] (xoshiro256++, the same
//! algorithm `rand` 0.8 uses on 64-bit targets, seeded through
//! splitmix64 exactly like `SeedableRng::seed_from_u64`), the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`) and [`SeedableRng`].
//!
//! Streams are deterministic for a given seed, which is all the
//! simulator requires; the distributions match `rand`'s (Lemire-style
//! unbiased integer ranges, 53-bit uniform floats).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), as rand's Standard does for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types sampleable over a half-open or inclusive range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[low, high)`. `high > low` must hold.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u64;
                low.wrapping_add(sample_below(rng, span) as $t)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return low.wrapping_add(rng.next_u64() as $t);
                }
                low.wrapping_add(sample_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        low + f64::sample(rng) * (high - low)
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_range(rng, low, f64::from_bits(high.to_bits() + 1))
    }
}

/// Unbiased draw from `[0, bound)` (Lemire's multiply-shift rejection).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain (`bool`,
    /// integers) or `[0, 1)` (floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from ambient entropy (system time here — the
    /// workspace only uses explicit seeds).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++, the
    /// algorithm behind `rand` 0.8's `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as rand_core's default seeding does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let z: u32 = rng.gen_range(5..=5);
            assert_eq!(z, 5);
            let f: f64 = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2800..3200).contains(&hits), "hits {hits}");
    }
}
