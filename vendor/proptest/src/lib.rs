//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro with `#![proptest_config(...)]`,
//! `x in strategy` parameters, [`prop_assert!`]-family macros,
//! [`prop_assume!`], `any::<T>()`, range strategies, tuple strategies,
//! [`Strategy::prop_map`] / [`Strategy::prop_filter`], [`prop_oneof!`],
//! [`strategy::Just`] and `prop::collection::vec`.
//!
//! Differences from real proptest: failing inputs are *not* shrunk (the
//! failing case is printed as generated) and no regression files are
//! written or read. Case counts honour `ProptestConfig::with_cases`.
//! Each test function derives its RNG seed from its own name, so runs
//! are deterministic per test but decorrelated across tests.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};

/// Outcome of a single generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The input did not satisfy a `prop_assume!` precondition; the
    /// case is skipped and does not count against the case budget.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    /// Creates a rejection with the given message.
    pub fn reject(msg: impl fmt::Display) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred` (retrying up to a bound,
    /// then rejecting the whole case).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Boxes the strategy behind a vtable (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive candidates",
            self.whence
        );
    }
}

/// Strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Uniform over the type's whole domain, like proptest's `any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<f64>()
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
}

/// Size specifications accepted by [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Collection strategies (`prop::collection` in real proptest).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::SmallRng;
    use rand::Rng as _;

    /// Strategy for vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` paths used by `use proptest::prelude::*` code.
pub mod prop {
    pub use super::collection;
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use super::strategy;
    pub use super::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Strategy building blocks (`proptest::strategy` paths).
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy};
}

/// Runs one test function's cases; called by [`proptest!`] expansions.
///
/// `name` seeds the RNG so each test gets a deterministic but distinct
/// stream. Rejections (from `prop_assume!` or filters) do not count
/// toward `cases`, with a global retry bound to terminate pathological
/// filters.
pub fn run_cases<F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>>(
    name: &str,
    config: &ProptestConfig,
    mut case: F,
) {
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    });
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases) * 20 + 1000;
    while accepted < config.cases {
        attempts += 1;
        if attempts > max_attempts {
            panic!(
                "{name}: gave up after {attempts} attempts with only {accepted}/{} accepted cases",
                config.cases
            );
        }
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {accepted} passing cases: {msg}")
            }
        }
    }
}

/// Declares property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __strategies = ($($strategy,)+);
                let ($(ref $arg,)+) = __strategies;
                $crate::run_cases(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::Strategy::generate($arg, __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Asserts within a property body, failing the case (not panicking
/// directly) so the harness can report the generated input count.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Chooses uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf {
            options: vec![$($crate::Strategy::boxed($strategy)),+],
        }
    };
}

/// See [`prop_oneof!`].
pub struct OneOf<T> {
    /// The equally-weighted alternatives.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps_compose(x in 0u64..100, y in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert!(x < 100);
            prop_assert!(y < 20 && y % 2 == 0);
        }

        #[test]
        fn vec_lengths_respect_bounds(xs in prop::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&xs.len()));
        }

        #[test]
        fn oneof_and_filter(v in prop_oneof![Just(1u64), Just(2u64)].prop_filter("keep", |v| *v > 0)) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_context() {
        super::run_cases(
            "always_fails",
            &ProptestConfig::with_cases(5),
            |_rng| -> Result<(), TestCaseError> { Err(TestCaseError::fail("nope")) },
        );
    }
}
