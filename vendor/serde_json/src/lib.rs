//! Offline stand-in for `serde_json`.
//!
//! Renders the [`serde::Value`] tree (the stand-in serde's data model)
//! to JSON text and parses JSON text back, covering the API surface the
//! workspace uses: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`], [`to_writer`], the [`json!`] macro and the [`Value`]
//! re-export.
//!
//! Output is standard JSON: strings are escaped per RFC 8259, non-finite
//! floats serialize as `null` (as real serde_json does), and integers
//! print without a decimal point.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::io;

pub use serde::{DeError as Error, Value};

use serde::{Deserialize, Serialize};

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the stand-in data model; the `Result` mirrors
/// serde_json's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
///
/// # Errors
///
/// Never fails for the stand-in data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> io::Result<()> {
    writer.write_all(
        to_string(value)
            .expect("stand-in serialization is infallible")
            .as_bytes(),
    )
}

/// Parses a JSON document into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_json_value(&value)
}

/// Builds a [`Value`] from JSON-ish literal syntax.
///
/// Supports the shapes this workspace writes: `json!(null)`, flat and
/// nested `{"key": expr, ...}` objects and `[expr, ...]` arrays, plus
/// any serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` prints the shortest representation that parses
                // back to the same f64; force a decimal point so the
                // value reads as a float (serde_json prints 1.0 as 1.0).
                let mut text = format!("{f}");
                if !text.contains(['.', 'e', 'E']) {
                    text.push_str(".0");
                }
                out.push_str(&text);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::custom("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // workspace's serializer; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_render() {
        let v = json!({
            "name": "gcc",
            "count": 3u64,
            "ratio": 0.5f64,
            "flags": [true, false],
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"gcc","count":3,"ratio":0.5,"flags":[true,false]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"gcc\""));
    }

    #[test]
    fn parse_roundtrips() {
        let v = json!({
            "a": 1u64,
            "b": -2i64,
            "c": 1.25f64,
            "s": "hi\n\"there\"",
            "arr": [1u64, 2u64],
            "null": Option::<u64>::None,
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        assert!(from_str::<Vec<u64>>("[1, -2]").is_err());
    }
}
